"""Lockstep SIMD execution: N fault scenarios of one binary at once.

Monte-Carlo campaigns run the *same* program thousands of times,
differing only in the fault draws.  A :class:`LaneBlock` exploits that
shape: N platforms ("lanes") execute in lockstep as structure-of-arrays
numpy state — registers as an ``(N, 16)`` array, per-lane plain-word
scratchpad views as ``(N, words)`` arrays, and a shared predecoded
instruction stream — with one vectorized commit per opcode instead of N
interpreter steps.  Lanes diverge only at taken branches and faulted
accesses; min-PC scheduling keeps the common path fused and lets
stragglers catch up until the group reconverges.

Bit-exactness contract (checked by the differential fuzzer in
``tests/test_soc_simd.py``): every lane must be bit-identical —
registers, memories, fault counters, RNG stream positions — to an
independent scalar run of the same platform.  The block inherits the
fast lane's machinery for this (see :mod:`repro.soc.fastlane`):

* **RNG streams.**  Each lane consumes only its own fault models'
  generators.  Gap budgets are read via ``clean_run_length()`` exactly
  when a fetch/access is about to occur and settled in bulk via
  ``consume_clean``; anything that would sample a mask is delegated to
  a faithful per-lane ``Cpu.step`` against the real ports.  This module
  deliberately never constructs a Generator of its own (rule REP102).
* **Counters.**  Vector-committed accesses settle through the ports'
  ``account_clean_*`` hooks; corrected/detected counters never move in
  lockstep because only provably-CLEAN words are executed vectorized.
* **Faithful slow path.**  A lane whose next instruction cannot be
  proven clean (budget exhausted, non-CLEAN word, out-of-range address,
  illegal instruction) is settled and single-stepped through
  ``Cpu.step``, reproducing stats, scrubbing, telemetry and exceptions
  exactly; it rejoins the vector group at the next opportunity.
* **Stores.**  Vector stores land in the per-lane view rows and are
  encoded (batched across addresses) and written back before anything
  can observe the lane's memory.

Lane-facing ECC work is vectorized across lanes as well: scratchpad
view fills gather each lane's raw word and decode them through one
``decode_batch`` call (``record=False`` — the scalar path these fills
mirror publishes no metrics).

Each member platform is attached via :meth:`Platform.bind_engine`, so
``run_until_stop`` — and every mitigation controller built on it —
transparently executes through the block.  A lane's
``run_until_stop`` call *demands* that lane; servicing advances every
demanded lane until each has produced its own stop/raise event, never
past it.  Breadth-first controllers (``SchemeRunner.execute_lanes``)
demand all lanes up front so the whole block advances together.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.base import DecodeStatus, STATUS_CLEAN
from repro.obs import active_metrics, names
from repro.obs.profile import active_profiler, pow2_bucket, ratio_bucket
from repro.soc.cpu import (
    OPCODE_NAMES,
    ExecutionLimitExceeded,
    StopReason,
    predecode,
)
from repro.soc.isa import NUM_REGISTERS, IllegalInstruction
from repro.soc.memory import MemoryAccessFault
from repro.soc.platform import DetectedError
from repro.soc.ports import CodecPort, RawPort

_MASK32 = 0xFFFFFFFF
_U64 = np.uint64
_I64 = np.int64
_M32 = _U64(0xFFFFFFFF)
_M32_I = _I64(0xFFFFFFFF)
_SIGN32 = _I64(0x80000000)
_TWO32 = _I64(0x100000000)

#: IM-view marker for words that cannot be executed vectorized.
_BLOCKED: tuple = ()

#: Fault budget not yet read from the lane's fault model.
_UNDRAWN = -1

#: Budget stand-in when a memory has no fault model at all.
_UNBOUNDED = 1 << 62

#: Scratchpad view cell states.
_SP_UNKNOWN, _SP_VALID, _SP_BLOCKED = 0, 1, 2

#: Dirty write-back switches to the vectorized codec path above this
#: many distinct addresses (same threshold as the fast lane).
_BATCH_FLUSH_THRESHOLD = 16

#: Exceptions a faithful slow step may raise; buffered as the lane's
#: event and re-raised from that lane's ``run_until_stop``.
_STEP_ERRORS = (DetectedError, IllegalInstruction, MemoryAccessFault)


def _signed(values: np.ndarray) -> np.ndarray:
    """Reinterpret 32-bit patterns (in uint64 lanes) as two's complement."""
    as_int = values.astype(_I64)
    return np.where(as_int >= _SIGN32, as_int - _TWO32, as_int)


def lane_capable(platform) -> bool:
    """Whether a platform's ports support lockstep execution.

    The same contract as the fast lane: only stock ports whose data
    side is 32 bits wide, so the block's plain-word views are faithful.
    """
    for port in (platform.im_port, platform.sp_port):
        if type(port) is RawPort:
            continue
        if type(port) is CodecPort and port.codec.data_bits == 32:
            continue
        return False
    return True


class LaneBlock:
    """N platforms executing one binary in lockstep.

    Parameters
    ----------
    platforms:
        Lane members.  All must be lane-capable, share memory
        geometries and use the same port/codec configuration (fault
        models and RNG streams stay strictly per-lane).
    """

    def __init__(self, platforms, program_words=None) -> None:
        if not platforms:
            raise ValueError("a lane block needs at least one platform")
        first = platforms[0]
        for platform in platforms:
            if not lane_capable(platform):
                raise ValueError(
                    "platform ports are not lane-capable; run it on the "
                    "scalar engine instead"
                )
            if (
                platform.im.words != first.im.words
                or platform.sp.words != first.sp.words
            ):
                raise ValueError("lane memory geometries differ")
            for mine, ref in (
                (platform.im_port, first.im_port),
                (platform.sp_port, first.sp_port),
            ):
                if type(mine) is not type(ref):
                    raise ValueError("lane port types differ")
                if mine.codec is not None and (
                    type(mine.codec) is not type(ref.codec)
                    or mine.codec.code_bits != ref.codec.code_bits
                ):
                    raise ValueError("lane codec configurations differ")
        n = len(platforms)
        self._platforms = list(platforms)
        self._im_words = first.im.words
        self._sp_words = first.sp.words
        # Codecs are stateless pure functions of their construction
        # parameters (validated identical above), so one instance can
        # decode gathered words from every lane.
        self._im_codec = first.im_port.codec
        self._sp_codec = first.sp_port.codec
        self._im_mems = [p.im for p in platforms]
        self._sp_mems = [p.sp for p in platforms]
        self._im_ports = [p.im_port for p in platforms]
        self._sp_ports = [p.sp_port for p in platforms]
        self._im_faults = [p.im.faults for p in platforms]
        self._sp_faults = [p.sp.faults for p in platforms]
        self._sp_samples_writes = [
            p.sp.faults is not None and p.sp.fault_on_write
            for p in platforms
        ]
        if len(set(self._sp_samples_writes)) > 1:
            raise ValueError(
                "lanes disagree on write fault sampling; build the "
                "block from identically configured platforms"
            )
        # Structure-of-arrays architectural state.
        self._regs = np.zeros((n, NUM_REGISTERS), dtype=_U64)
        self._pc = np.zeros(n, dtype=_I64)
        self._cycles = np.zeros(n, dtype=_I64)
        self._instructions = np.zeros(n, dtype=_I64)
        self._taken = np.zeros(n, dtype=_I64)
        # Per-lane accounting pending since the last settle.
        self._settled_instructions = np.zeros(n, dtype=_I64)
        self._sp_reads = np.zeros(n, dtype=_I64)
        self._sp_writes = np.zeros(n, dtype=_I64)
        self._im_left = np.full(n, _UNDRAWN, dtype=_I64)
        self._sp_left = np.full(n, _UNDRAWN, dtype=_I64)
        # Clean views: shared-by-value IM predecode entries per lane,
        # plain-word scratchpad rows, and dirty-store masks.
        self._im_entries = [[None] * self._im_words for _ in range(n)]
        self._im_version = [-1] * n
        self._sp_view = np.zeros((n, self._sp_words), dtype=_U64)
        self._sp_state = np.zeros((n, self._sp_words), dtype=np.uint8)
        self._sp_dirty = np.zeros((n, self._sp_words), dtype=bool)
        self._sp_version = [-1] * n
        # Per-lane memo of verified straight-line run lengths for the
        # current IM row version (-1 = not computed yet).
        self._im_runs = [[-1] * self._im_words for _ in range(n)]
        # Demand/event machinery.
        self._events: list = [None] * n
        self._events_dirty = False
        self._demanded: set = set()
        self._limit_abs = np.zeros(n, dtype=_I64)
        self._max_arg = [0] * n
        # Optional clean-program reference enabling multi-instruction
        # batched commits of converged ALU runs (see ``_batch_run``).
        self._clean_entries = None
        self._alu_run = None
        if program_words is not None:
            self._set_program(program_words)
        for lane, platform in enumerate(platforms):
            platform.bind_engine(self._make_run(lane))
        metrics = active_metrics()
        metrics.counter(names.SIMD_BLOCKS).inc()
        metrics.counter(names.SIMD_LANES).inc(n)

    def __len__(self) -> int:
        return len(self._platforms)

    @property
    def platforms(self):
        return list(self._platforms)

    def close(self) -> None:
        """Detach the block; platforms revert to their own engines."""
        for platform in self._platforms:
            platform.bind_engine(None)

    def _set_program(self, words) -> None:
        """Precompute the clean-program ALU-run reference.

        ``_clean_entries[pc]`` is the predecoded entry of the pristine
        program word at ``pc`` (``None`` for illegal words or past the
        program end) and ``_alu_run[pc]`` the length of the maximal
        straight-line run of register-only entries starting there.  A
        lane cell that resolves to the *same object* is provably an
        uncorrupted fetch, which is what licenses multi-instruction
        batched commits.
        """
        full: list = [None] * self._im_words
        for address, word in enumerate(words[: self._im_words]):
            try:
                full[address] = predecode(word & _MASK32)
            except IllegalInstruction:
                full[address] = None
        runs = [0] * (self._im_words + 1)
        for address in range(self._im_words - 1, -1, -1):
            entry = full[address]
            if entry is not None and entry[6] < 32:
                runs[address] = runs[address + 1] + 1
        self._clean_entries = full
        self._alu_run = runs

    # ------------------------------------------------------------------
    # Demand / event plumbing
    # ------------------------------------------------------------------
    def _make_run(self, lane: int):
        def run(max_instructions: int = 50_000_000) -> StopReason:
            return self._run_lane(lane, max_instructions)

        return run

    def demand(self, lanes, max_instructions: int = 50_000_000) -> None:
        """Mark lanes as runnable so the next service advances them all.

        A breadth-first controller demands every pending lane before
        running the first one; otherwise the first ``run_until_stop``
        would execute its lane alone.  The instruction limit is fixed
        at demand time (the lane is quiescent then, exactly like the
        scalar engine at its ``run`` call).
        """
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        for lane in lanes:
            if self._events[lane] is None and lane not in self._demanded:
                self._demanded.add(lane)
                state = self._platforms[lane].cpu.state
                self._limit_abs[lane] = (
                    state.instructions + max_instructions
                )
                self._max_arg[lane] = max_instructions

    def _run_lane(self, lane: int, max_instructions: int) -> StopReason:
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        if self._events[lane] is None:
            self.demand((lane,), max_instructions)
            self._service()
        kind, payload = self._events[lane]
        self._events[lane] = None
        self._demanded.discard(lane)
        if kind == "stop":
            return payload
        raise payload

    # ------------------------------------------------------------------
    # Service loop: min-PC lockstep scheduling
    # ------------------------------------------------------------------
    def _service(self) -> None:
        """Advance every demanded lane to its next stop/raise event.

        No lane ever runs past its own event — the controller must
        observe it (and may mutate the lane) before the lane continues,
        which is what keeps per-lane RNG and counter sequences
        positionally identical to scalar runs.
        """
        events = self._events
        demanded = self._demanded
        pc = self._pc
        for lane in sorted(demanded):
            if events[lane] is None:
                self._sync_in(lane)
        vector_committed = 0
        slow_steps = 0
        # Profiler telemetry accumulates in plain locals and publishes
        # once per service; lane scheduling and RNG/counter effects are
        # untouched whether profiling is on or off.
        profiler = active_profiler()
        profiling = profiler.enabled
        prof_rounds = 0
        prof_fast_cycles = 0
        prof_occupancy: dict = {}
        prof_density: dict = {}
        prof_divergence: dict = {}
        prof_depth: dict = {}
        prof_ops: dict = {}
        # ``active`` (and its index-array mirror) is maintained in
        # ascending lane order across rounds and only re-filtered when
        # a round produced events — the scheduler's per-round work is
        # otherwise a couple of vector reads, not per-lane numpy
        # scalar indexing.
        active = sorted(
            lane for lane in demanded if events[lane] is None
        )
        active_arr = np.array(active, dtype=np.intp)
        while active:
            pcs = pc[active_arr]
            pcmin = int(pcs.min())
            if int(pcs[-1]) == pcmin and int(pcs.max()) == pcmin:
                group = active
            else:
                sel = np.nonzero(pcs == pcmin)[0]
                group = [active[i] for i in sel.tolist()]
            if profiling:
                prof_rounds += 1
                occupancy = len(group)
                key = pow2_bucket(occupancy)
                prof_occupancy[key] = prof_occupancy.get(key, 0) + 1
                key = ratio_bucket(occupancy, len(active))
                prof_density[key] = prof_density.get(key, 0) + 1
                if occupancy == len(active):
                    distinct, depth = 1, 0
                else:
                    distinct = int(np.unique(pcs).size)
                    depth = int(pcs.max()) - pcmin
                key = pow2_bucket(distinct)
                prof_divergence[key] = prof_divergence.get(key, 0) + 1
                key = pow2_bucket(depth)
                prof_depth[key] = prof_depth.get(key, 0) + 1
            slow: list = []
            by_entry: dict = {}
            if not 0 <= pcmin < self._im_words:
                slow = group
            else:
                im_left = self._im_left
                im_entries = self._im_entries
                lefts = im_left[
                    np.array(group, dtype=np.intp)
                ].tolist()
                for i, lane in enumerate(group):
                    entry = im_entries[lane][pcmin]
                    if entry is None:
                        entry = self._im_fill(lane, pcmin)
                    if entry is _BLOCKED:
                        slow.append(lane)
                        continue
                    # A fetch of pcmin definitely follows (vectorized
                    # or via the slow step), so the gap draw is legal.
                    left = lefts[i]
                    if left == _UNDRAWN:
                        faults = self._im_faults[lane]
                        left = (
                            faults.clean_run_length()
                            if faults is not None
                            else _UNBOUNDED
                        )
                        im_left[lane] = left
                    if left < 1:
                        slow.append(lane)
                        continue
                    by_entry.setdefault(id(entry), (entry, []))[1].append(
                        lane
                    )
            if (
                self._clean_entries is not None
                and not slow
                and len(by_entry) == 1
            ):
                entry, lanes = next(iter(by_entry.values()))
                if (
                    entry[6] < 32
                    and entry is self._clean_entries[pcmin]
                ):
                    batched = self._batch_run(pcmin, lanes, pcs)
                    if batched:
                        vector_committed += batched * len(lanes)
                        if profiling:
                            clean = self._clean_entries
                            width = len(lanes)
                            for address in range(pcmin, pcmin + batched):
                                run_entry = clean[address]
                                prof_fast_cycles += run_entry[5] * width
                                key = OPCODE_NAMES[run_entry[6]]
                                prof_ops[key] = prof_ops.get(key, 0) + width
                        by_entry = {}
            for entry, lanes in by_entry.values():
                committed = self._commit(entry, pcmin, lanes, slow)
                vector_committed += committed
                if profiling and committed:
                    prof_fast_cycles += entry[5] * committed
                    key = OPCODE_NAMES[entry[6]]
                    prof_ops[key] = prof_ops.get(key, 0) + committed
            for lane in slow:
                self._slow_step(lane, profiler if profiling else None)
                slow_steps += 1
            if self._events_dirty:
                self._events_dirty = False
                active = [
                    lane for lane in active if events[lane] is None
                ]
                active_arr = np.array(active, dtype=np.intp)
        metrics = active_metrics()
        if metrics.enabled:
            metrics.counter(names.SIMD_SERVICES).inc()
            metrics.counter(names.SIMD_VECTOR_INSTRUCTIONS).inc(
                vector_committed
            )
            metrics.counter(names.SIMD_SLOW_STEPS).inc(slow_steps)
        if profiling:
            profiler.record_simd_service(
                prof_rounds,
                vector_committed,
                prof_occupancy,
                prof_density,
                prof_divergence,
                prof_depth,
                vector_cycles=prof_fast_cycles,
            )
            if prof_ops:
                profiler.record_opcodes(prof_ops)

    # ------------------------------------------------------------------
    # Vectorized commit of one shared entry across a lane group
    # ------------------------------------------------------------------
    def _commit(self, entry, pcmin, lanes, slow) -> int:
        """Execute ``entry`` for every lane in ``lanes`` at ``pcmin``.

        Lanes whose data access cannot be proven clean are moved to
        ``slow`` uncommitted.  Returns the number of lane-instructions
        committed vectorized.
        """
        regs = self._regs
        pc = self._pc
        op = entry[6]
        mem_kind = entry[7]
        a = entry[1]
        imm = entry[4]
        if mem_kind == 1:  # LW
            lanes = self._peel_load(entry, lanes, slow)
            if not lanes:
                return 0
        elif mem_kind == 2:  # SW
            lanes = self._peel_store(entry, lanes, slow)
            if not lanes:
                return 0
        idx = np.array(lanes, dtype=np.intp)
        if op < 32 and op != 24:  # register-writing ALU ops
            if a:
                regs[idx, a] = self._alu(entry, idx)
            pc[idx] = pcmin + 1
        elif op == 24:  # LUI
            if a:
                regs[idx, a] = _U64((imm << 12) & _MASK32)
            pc[idx] = pcmin + 1
        elif op == 32:  # LW (addresses pre-validated by the peel)
            address = (
                (regs[idx, entry[2]] + _U64(imm & _MASK32)) & _M32
            ).astype(np.intp)
            values = self._sp_view[idx, address]
            if a:
                regs[idx, a] = values
            self._sp_left[idx] -= 1
            self._sp_reads[idx] += 1
            pc[idx] = pcmin + 1
        elif op == 33:  # SW
            address = (
                (regs[idx, entry[2]] + _U64(imm & _MASK32)) & _M32
            ).astype(np.intp)
            self._sp_view[idx, address] = regs[idx, a]
            self._sp_state[idx, address] = _SP_VALID
            self._sp_dirty[idx, address] = True
            if self._sp_samples_writes[lanes[0]]:
                self._sp_left[idx] -= 1
            self._sp_writes[idx] += 1
            pc[idx] = pcmin + 1
        elif 48 <= op <= 51:  # BEQ/BNE/BLT/BGE
            lhs = regs[idx, a]
            rhs = regs[idx, entry[2]]
            if op == 48:
                cond = lhs == rhs
            elif op == 49:
                cond = lhs != rhs
            elif op == 50:
                cond = _signed(lhs) < _signed(rhs)
            else:
                cond = _signed(lhs) >= _signed(rhs)
            bubble = cond.astype(_I64)
            self._taken[idx] += bubble
            self._cycles[idx] += bubble  # taken-branch pipeline bubble
            pc[idx] = np.where(cond, pcmin + imm, pcmin + 1)
        elif op == 52:  # JAL
            if a:
                regs[idx, a] = _U64((pcmin + 1) & _MASK32)
            pc[idx] = pcmin + imm
        elif op == 53:  # JALR (target captured before the link write)
            target = (
                (regs[idx, entry[2]] + _U64(imm & _MASK32)) & _M32
            ).astype(_I64)
            if a:
                regs[idx, a] = _U64((pcmin + 1) & _MASK32)
            pc[idx] = target
        else:  # HALT (62) / YIELD (63)
            pc[idx] = pcmin + 1
            self._instructions[idx] += 1
            self._cycles[idx] += entry[5]
            self._im_left[idx] -= 1
            reason = StopReason.HALT if op == 62 else StopReason.YIELD
            self._events_dirty = True
            for lane in lanes:
                self._settle(lane)
                self._events[lane] = ("stop", reason)
            return len(lanes)
        self._instructions[idx] += 1
        self._cycles[idx] += entry[5]
        self._im_left[idx] -= 1
        over = idx[self._instructions[idx] >= self._limit_abs[idx]]
        for lane in over.tolist():
            self._settle(lane)
            self._events_dirty = True
            self._events[lane] = (
                "raise",
                ExecutionLimitExceeded(
                    f"exceeded {self._max_arg[lane]} instructions at "
                    f"pc={int(pc[lane])}"
                ),
            )
        return len(lanes)

    def _batch_run(self, pcmin, lanes, pcs) -> int:
        """Commit a verified straight-line ALU run in one pass.

        Only entered when every lane of the (single) group resolved the
        clean program entry at ``pcmin`` and that entry is a pure
        register op.  Register ops cannot fault, trap or stop, so once
        the run is entered every instruction in it executes — the only
        per-instruction obligations are the register writes themselves,
        which lets the scheduler amortise its per-round Python overhead
        over the whole run.  Returns the number of instructions
        committed (0 = batch not worthwhile; fall back to the normal
        single-instruction commit).
        """
        cap = self._alu_run[pcmin]
        higher = pcs[pcs != pcmin]
        if higher.size:
            # Never run past another active lane's pc: min-pc
            # reconvergence would otherwise degrade into divergence.
            cap = min(cap, int(higher.min()) - pcmin)
        if cap < 2:
            return 0
        arr = np.array(lanes, dtype=np.intp)
        cap = min(cap, int(self._im_left[arr].min()))
        cap = min(
            cap,
            int((self._limit_abs[arr] - self._instructions[arr]).min()),
        )
        if cap < 2:
            return 0
        for lane in lanes:
            run = self._lane_run(lane, pcmin)
            if run < cap:
                cap = run
                if cap < 2:
                    return 0
        clean = self._clean_entries
        regs = self._regs
        total_cycles = 0
        for address in range(pcmin, pcmin + cap):
            entry = clean[address]
            a = entry[1]
            if a:
                if entry[6] == 24:  # LUI
                    regs[arr, a] = _U64((entry[4] << 12) & _MASK32)
                else:
                    regs[arr, a] = self._alu(entry, arr)
            total_cycles += entry[5]
        self._pc[arr] = pcmin + cap
        self._instructions[arr] += cap
        self._cycles[arr] += total_cycles
        self._im_left[arr] -= cap
        over = arr[self._instructions[arr] >= self._limit_abs[arr]]
        for lane in over.tolist():
            self._settle(lane)
            self._events_dirty = True
            self._events[lane] = (
                "raise",
                ExecutionLimitExceeded(
                    f"exceeded {self._max_arg[lane]} instructions at "
                    f"pc={int(self._pc[lane])}"
                ),
            )
        return cap

    def _lane_run(self, lane, pcmin) -> int:
        """Length of the lane's verified clean ALU run from ``pcmin``.

        Memoised per IM row version; resolving cells ahead of the pc is
        safe because a straight-line register run, once entered, always
        fetches all of them, and resolution itself (peek + decode) has
        no observable side effects.
        """
        runs = self._im_runs[lane]
        cached = runs[pcmin]
        if cached >= 0:
            return cached
        clean = self._clean_entries
        row = self._im_entries[lane]
        address = pcmin + 1
        end = pcmin + self._alu_run[pcmin]
        while address < end:
            cell = row[address]
            if cell is None:
                cell = self._im_fill(lane, address)
            if cell is not clean[address]:
                break
            address += 1
        run = address - pcmin
        runs[pcmin] = run
        return run

    def _alu(self, entry, idx) -> np.ndarray:
        """Vectorized register-writing ALU ops (opcodes 1..23)."""
        regs = self._regs
        op = entry[6]
        imm = entry[4]
        rb = regs[idx, entry[2]]
        if op == 1:
            return (rb + regs[idx, entry[3]]) & _M32
        if op == 2:
            return (rb - regs[idx, entry[3]]) & _M32
        if op == 3:
            return rb & regs[idx, entry[3]]
        if op == 4:
            return rb | regs[idx, entry[3]]
        if op == 5:
            return rb ^ regs[idx, entry[3]]
        if op == 6:
            return (rb << (regs[idx, entry[3]] & _U64(31))) & _M32
        if op == 7:
            return rb >> (regs[idx, entry[3]] & _U64(31))
        if op == 8:
            shift = (regs[idx, entry[3]] & _U64(31)).astype(_I64)
            return ((_signed(rb) >> shift) & _M32_I).astype(_U64)
        if op == 9:
            return (
                _signed(rb) < _signed(regs[idx, entry[3]])
            ).astype(_U64)
        if op == 10:
            product = _signed(rb) * _signed(regs[idx, entry[3]])
            return (product & _M32_I).astype(_U64)
        if op == 11:
            product = _signed(rb) * _signed(regs[idx, entry[3]])
            return ((product >> _I64(32)) & _M32_I).astype(_U64)
        if op == 16:
            return (rb + _U64(imm & _MASK32)) & _M32
        if op == 17:
            return rb & _U64(imm & _MASK32)
        if op == 18:
            return rb | _U64(imm & _MASK32)
        if op == 19:
            return rb ^ _U64(imm & _MASK32)
        if op == 20:
            return (rb << _U64(imm & 31)) & _M32
        if op == 21:
            return rb >> _U64(imm & 31)
        if op == 22:
            return ((_signed(rb) >> _I64(imm & 31)) & _M32_I).astype(_U64)
        if op == 23:
            return (_signed(rb) < imm).astype(_U64)
        raise AssertionError(f"unexpected ALU opcode {op}")

    # ------------------------------------------------------------------
    # Data-access peeling: prove each lane's access clean or slow-step
    # ------------------------------------------------------------------
    def _peel_load(self, entry, lanes, slow):
        """Return the lanes whose LW is provably clean; peel the rest.

        Mirrors the fast lane's decision order exactly: address range
        check, then view-cell fill/blocked check, then the (lazy) SP
        gap draw and budget check — wild and blocked accesses never
        draw prematurely.
        """
        idx = np.array(lanes, dtype=np.intp)
        address = (
            (self._regs[idx, entry[2]] + _U64(entry[4] & _MASK32)) & _M32
        )
        in_range = address < self._sp_words
        if not in_range.all():
            slow.extend(idx[~in_range].tolist())
            idx = idx[in_range]
            if not idx.size:
                return []
            address = address[in_range]
        address = address.astype(np.intp)
        cell = self._sp_state[idx, address]
        unknown = cell == _SP_UNKNOWN
        if unknown.any():
            self._fill_sp(idx[unknown], address[unknown])
            cell = self._sp_state[idx, address]
        ok = cell == _SP_VALID
        if not ok.all():
            slow.extend(idx[~ok].tolist())
            idx = idx[ok]
            if not idx.size:
                return []
        kept = []
        sp_left = self._sp_left
        for lane in idx.tolist():
            if sp_left[lane] == _UNDRAWN:
                faults = self._sp_faults[lane]
                sp_left[lane] = (
                    faults.clean_run_length()
                    if faults is not None
                    else _UNBOUNDED
                )
            if sp_left[lane] < 1:
                slow.append(lane)
            else:
                kept.append(lane)
        return kept

    def _peel_store(self, entry, lanes, slow):
        """Return the lanes whose SW is provably clean; peel the rest."""
        idx = np.array(lanes, dtype=np.intp)
        address = (
            (self._regs[idx, entry[2]] + _U64(entry[4] & _MASK32)) & _M32
        )
        in_range = address < self._sp_words
        if not in_range.all():
            slow.extend(idx[~in_range].tolist())
            idx = idx[in_range]
            if not idx.size:
                return []
        kept = []
        sp_left = self._sp_left
        for lane in idx.tolist():
            if self._sp_samples_writes[lane]:
                if sp_left[lane] == _UNDRAWN:
                    sp_left[lane] = self._sp_faults[
                        lane
                    ].clean_run_length()
                if sp_left[lane] < 1:
                    slow.append(lane)
                    continue
            kept.append(lane)
        return kept

    # ------------------------------------------------------------------
    # View population
    # ------------------------------------------------------------------
    def _im_fill(self, lane, address):
        """Predecode a lane's stored IM word if it is provably clean.

        Identical clean words across lanes resolve to the *same* cached
        entry tuple (the predecode cache is keyed by word value), which
        is what lets the scheduler group lanes by entry identity.
        """
        raw = self._im_mems[lane].peek(address)
        codec = self._im_codec
        if codec is not None:
            result = codec.decode(raw)
            if result.status is not DecodeStatus.CLEAN:
                self._im_entries[lane][address] = _BLOCKED
                return _BLOCKED
            raw = result.data
        try:
            entry = predecode(raw)
        except IllegalInstruction:
            entry = _BLOCKED
        self._im_entries[lane][address] = entry
        return entry

    def _fill_sp(self, idx, address) -> None:
        """Fill unknown SP view cells, decoding all lanes in one batch."""
        raws = np.fromiter(
            (
                self._sp_mems[lane].peek(cell)
                for lane, cell in zip(idx.tolist(), address.tolist())
            ),
            dtype=_U64,
            count=idx.size,
        )
        codec = self._sp_codec
        if codec is None:
            self._sp_view[idx, address] = raws
            self._sp_state[idx, address] = _SP_VALID
            return
        batch = codec.decode_batch(raws, record=False)
        clean = batch.status == STATUS_CLEAN
        self._sp_view[idx[clean], address[clean]] = batch.data[clean]
        self._sp_state[idx[clean], address[clean]] = _SP_VALID
        self._sp_state[idx[~clean], address[~clean]] = _SP_BLOCKED

    # ------------------------------------------------------------------
    # Per-lane faithful slow step
    # ------------------------------------------------------------------
    def _slow_step(self, lane, profiler=None) -> None:
        """Settle the lane and replay one instruction via ``Cpu.step``.

        With a profiler, the step is bracketed by instruction/cycle
        deltas for slow-path residency (``Cpu.step`` itself never
        profiles, so nothing is double-counted); the delta is recorded
        even when the step raises.
        """
        self._settle(lane)
        platform = self._platforms[lane]
        state = platform.cpu.state
        before_instructions = state.instructions
        before_cycles = state.cycles
        try:
            try:
                reason = platform.cpu.step()
            finally:
                if profiler is not None:
                    profiler.record_slow_path(
                        state.instructions - before_instructions,
                        state.cycles - before_cycles,
                    )
        except _STEP_ERRORS as exc:
            self._events_dirty = True
            self._events[lane] = ("raise", exc)
            return
        self._sync_in(lane)
        if reason is not None:
            self._events_dirty = True
            self._events[lane] = ("stop", reason)
            return
        if self._instructions[lane] >= self._limit_abs[lane]:
            self._events_dirty = True
            self._events[lane] = (
                "raise",
                ExecutionLimitExceeded(
                    f"exceeded {self._max_arg[lane]} instructions at "
                    f"pc={int(self._pc[lane])}"
                ),
            )

    # ------------------------------------------------------------------
    # SoA <-> CpuState synchronisation and accounting settlement
    # ------------------------------------------------------------------
    def _sync_in(self, lane) -> None:
        """Refresh a lane's SoA row from its (authoritative) CpuState."""
        state = self._platforms[lane].cpu.state
        self._pc[lane] = state.pc
        self._regs[lane, :] = state.registers
        self._cycles[lane] = state.cycles
        self._instructions[lane] = state.instructions
        self._taken[lane] = state.taken_branches
        self._settled_instructions[lane] = state.instructions
        self._sp_reads[lane] = 0
        self._sp_writes[lane] = 0
        self._im_left[lane] = _UNDRAWN
        self._sp_left[lane] = _UNDRAWN
        im = self._im_mems[lane]
        if im.version != self._im_version[lane]:
            self._im_entries[lane] = [None] * self._im_words
            self._im_runs[lane] = [-1] * self._im_words
            self._im_version[lane] = im.version
        sp = self._sp_mems[lane]
        if sp.version != self._sp_version[lane]:
            self._sp_state[lane, :] = _SP_UNKNOWN
            self._sp_dirty[lane, :] = False
            self._sp_version[lane] = sp.version

    def _settle(self, lane) -> None:
        """Commit a lane's pending bulk accounting to the faithful state."""
        state = self._platforms[lane].cpu.state
        state.pc = int(self._pc[lane])
        state.registers = [int(v) for v in self._regs[lane]]
        state.cycles = int(self._cycles[lane])
        state.instructions = int(self._instructions[lane])
        state.taken_branches = int(self._taken[lane])
        im_used = int(
            self._instructions[lane] - self._settled_instructions[lane]
        )
        if im_used:
            faults = self._im_faults[lane]
            if faults is not None:
                faults.consume_clean(im_used)
            self._im_ports[lane].account_clean_reads(im_used)
        sp_reads = int(self._sp_reads[lane])
        sp_writes = int(self._sp_writes[lane])
        sp_samples = sp_reads + (
            sp_writes if self._sp_samples_writes[lane] else 0
        )
        if sp_samples and self._sp_faults[lane] is not None:
            self._sp_faults[lane].consume_clean(sp_samples)
        if sp_reads:
            self._sp_ports[lane].account_clean_reads(sp_reads)
        if sp_writes:
            self._sp_ports[lane].account_clean_writes(sp_writes)
            self._flush_dirty(lane)
        if im_used or sp_reads or sp_writes:
            profiler = active_profiler()
            if profiler.enabled:
                profiler.record_settlement(sp_reads, sp_writes)
        self._settled_instructions[lane] = self._instructions[lane]
        self._sp_reads[lane] = 0
        self._sp_writes[lane] = 0

    def _flush_dirty(self, lane) -> None:
        """Encode and write back a lane's pending vector stores."""
        row = self._sp_dirty[lane]
        addresses = np.nonzero(row)[0]
        if not addresses.size:
            return
        sp = self._sp_mems[lane]
        values = self._sp_view[lane, addresses]
        codec = self._sp_codec
        profiler = active_profiler()
        if profiler.enabled:
            profiler.record_writeback(
                int(addresses.size),
                codec is not None
                and int(addresses.size) >= _BATCH_FLUSH_THRESHOLD,
            )
        if codec is None:
            for address, value in zip(
                addresses.tolist(), values.tolist()
            ):
                sp.poke(address, value)
        elif addresses.size >= _BATCH_FLUSH_THRESHOLD:
            for address, codeword in zip(
                addresses.tolist(), codec.encode_batch(values).tolist()
            ):
                sp.poke(address, codeword)
        else:
            for address, value in zip(
                addresses.tolist(), values.tolist()
            ):
                sp.poke(address, codec.encode(value))
        row[:] = False
        # The pokes bumped the version; the view itself made them, so
        # its cached plain words are still exact — resync, don't drop.
        self._sp_version[lane] = sp.version


def run_lane_block(runners, workload, vdd, frequency):
    """Run one workload across N runners' platforms in lockstep.

    Builds one platform per runner (all runners must be the same
    scheme), executes them as a :class:`LaneBlock` through the scheme's
    ``execute_lanes`` controller, and collects one
    :class:`~repro.mitigation.base.RunOutcome` per lane — bit-identical
    to running each runner's ``run`` individually.
    """
    if not runners:
        raise ValueError("need at least one runner")
    if any(type(r) is not type(runners[0]) for r in runners):
        raise ValueError("all lane runners must be the same scheme")
    platforms = []
    for runner in runners:
        platform = runner.build_platform(vdd)
        runner.last_platform = platform
        platform.load_program(list(workload.program_words))
        platform.load_data(list(workload.data_words), workload.data_base)
        platforms.append(platform)
    block = LaneBlock(
        platforms, program_words=list(workload.program_words)
    )
    try:
        lane_results = runners[0].execute_lanes(
            platforms, workload, block
        )
    finally:
        block.close()
    outcomes = []
    for runner, platform, lane_result in zip(
        runners, platforms, lane_results
    ):
        completed, failure, rollbacks, overhead = lane_result
        outcomes.append(
            runner.collect_outcome(
                workload, vdd, frequency, platform,
                completed, failure, rollbacks, overhead,
            )
        )
    return outcomes
