"""Content-addressed campaign result store.

``repro.store`` turns the deterministic Monte-Carlo exhibits into a
compute-once, serve-many system: every campaign point (one (scheme,
vdd) platform campaign, one Fig. 5 grid point, one Fig. 4 die) is
keyed by the SHA-256 of its provenance (:mod:`repro.store.keys`),
persisted append-safely in SQLite with an NDJSON sidecar for recovery
and interchange (:mod:`repro.store.store`), and reassembled
bit-identically from any mix of cached and fresh points
(:mod:`repro.store.pipeline`).
"""

from repro.store.keys import (
    KEY_SCHEMA,
    PointKey,
    fig5_point_key,
    fingerprint_payload,
    fingerprint_provenance,
    retention_die_key,
    scheme_campaign_key,
    workload_fingerprint,
)
from repro.store.pipeline import (
    GridResult,
    campaign_point_key,
    decode_campaign_result,
    encode_campaign_result,
    scheme_failure_grid,
)
from repro.store.store import STORE_SCHEMA, ResultStore

__all__ = [
    "KEY_SCHEMA",
    "STORE_SCHEMA",
    "GridResult",
    "PointKey",
    "ResultStore",
    "campaign_point_key",
    "decode_campaign_result",
    "encode_campaign_result",
    "fig5_point_key",
    "fingerprint_payload",
    "fingerprint_provenance",
    "retention_die_key",
    "scheme_campaign_key",
    "scheme_failure_grid",
    "workload_fingerprint",
]
