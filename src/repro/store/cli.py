"""``repro cache`` — inspect and maintain a result store."""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict, List, Optional

from repro.store.store import ResultStore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="inspect and maintain a content-addressed campaign "
        "result store",
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="result store file (created if missing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("ls", help="list cached points (insertion order)")
    sub.add_parser("stats", help="row count and operation counters")
    gc = sub.add_parser(
        "gc", help="keep the newest N points, drop the rest"
    )
    gc.add_argument("--keep", type=int, required=True, metavar="N")
    export = sub.add_parser("export", help="export rows to NDJSON")
    export.add_argument("path", metavar="FILE")
    imp = sub.add_parser("import", help="merge rows from an NDJSON export")
    imp.add_argument("path", metavar="FILE")
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    return parser


def _describe(entry: Dict[str, Any]) -> str:
    provenance = entry["provenance"]
    kind = entry["kind"]
    if kind == "scheme-campaign":
        detail = (
            f"scheme={provenance.get('scheme')} "
            f"vdd={provenance.get('vdd')} runs={provenance.get('runs')} "
            f"lanes={provenance.get('lanes')}"
        )
    elif kind == "fig5-point":
        detail = (
            f"vdd={provenance.get('vdd')} "
            f"accesses={provenance.get('accesses')} "
            f"seed={provenance.get('seed')} i={provenance.get('index')}"
        )
    elif kind == "fig4-die":
        detail = (
            f"die={provenance.get('die_index')}/"
            f"{provenance.get('n_dies')} seed={provenance.get('seed')}"
        )
    else:
        detail = ""
    return f"{entry['fingerprint'][:16]}  {kind:<16} {detail}"


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    store = ResultStore(args.store)
    if args.command == "ls":
        entries = store.entries()
        if args.json:
            print(json.dumps(entries, indent=2))
        else:
            for entry in entries:
                print(_describe(entry))
            print(f"{len(entries)} cached point(s) in {args.store}")
        return 0
    if args.command == "stats":
        stats = store.stats()
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            for key in sorted(stats):
                print(f"{key:<20} {stats[key]}")
        return 0
    if args.command == "gc":
        removed = store.gc(keep=args.keep)
        print(
            f"repro cache gc: removed {removed} point(s), "
            f"{len(store)} kept"
        )
        return 0
    if args.command == "export":
        count = store.export_ndjson(args.path)
        print(f"repro cache export: wrote {count} point(s) to {args.path}")
        return 0
    if args.command == "import":
        count = store.import_ndjson(args.path)
        print(
            f"repro cache import: merged {count} point(s) from "
            f"{args.path} ({len(store)} total)"
        )
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
