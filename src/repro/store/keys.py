"""Content-addressed campaign point keys.

A *campaign point* is the smallest independently reproducible unit of
Monte-Carlo work: one (scheme, voltage) platform campaign, one Fig. 5
voltage grid point, one Fig. 4 die.  Its key is the SHA-256 of the
canonical JSON of its **provenance** — exactly the fields that
determine the result bit-for-bit (codec/scheme, fault model, vdd, seed
range, lanes, workload) and nothing else.

Execution knobs are deliberately excluded: ``processes``, retry
budgets, task timeouts, journals, chaos policies and the PR 7
profiling/progress options change *how* a point is computed, never
*what* it computes — the engines are proven bit-exact across all of
them — so including any of it would fragment the cache without adding
information.  Equally excluded is anything environmental: wall-clock,
PID, hostname, OS entropy.  Rule ``REP103`` (``repro check``) fails
the build if key construction in this package ever touches such a
source, because one impure field silently turns every lookup into a
miss.

Lane width *is* part of the scheme-campaign key even though lockstep
execution is bit-exact: the seed axis is sharded into lane blocks
before fan-out, so ``lanes`` changes task granularity (a quarantined
block retires ``lanes`` runs, not one).  Chunk size is *not* part of
the Fig. 5 point key: the child stream draws its doubles in C order
regardless of how the Bernoulli matrix is split into row blocks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping

import numpy as np

from repro.core.errors import validate_vdd

#: Bumped when the provenance layout changes; part of every key.
KEY_SCHEMA = 1


def canonical_json(payload: Any) -> str:
    """Canonical JSON text: sorted keys, default separators."""
    return json.dumps(payload, sort_keys=True)


def fingerprint_payload(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PointKey:
    """A campaign point's kind plus its canonical provenance text."""

    kind: str
    provenance_json: str

    @classmethod
    def from_provenance(cls, kind: str, provenance: Mapping[str, Any]) -> "PointKey":
        body: Dict[str, Any] = dict(provenance)
        body["kind"] = kind
        body["schema"] = KEY_SCHEMA
        return cls(kind=kind, provenance_json=canonical_json(body))

    def provenance(self) -> Dict[str, Any]:
        loaded = json.loads(self.provenance_json)
        assert isinstance(loaded, dict)
        return loaded

    def fingerprint(self) -> str:
        return hashlib.sha256(self.provenance_json.encode("utf-8")).hexdigest()


def fingerprint_provenance(provenance: Mapping[str, Any]) -> str:
    """Recompute the fingerprint of a stored provenance dict.

    Used by the store to verify, on every probe, that a row's payload
    is still filed under the key its provenance hashes to.
    """
    return hashlib.sha256(
        canonical_json(provenance).encode("utf-8")
    ).hexdigest()


def access_model_provenance(access_model: Any) -> Dict[str, float]:
    """Provenance-relevant fields of an ``AccessErrorModel``."""
    return {
        "amplitude": float(access_model.amplitude),
        "exponent": float(access_model.exponent),
        "v_onset": float(access_model.v_onset),
    }


def workload_fingerprint(workload: Any) -> str:
    """Digest of a ``StreamingWorkload``'s defining fields.

    Accepts anything the campaign drivers accept — a bare
    ``StreamingWorkload`` or a wrapper exposing one as ``.workload``
    (``FftProgram``); both hash to the wrapped workload's fields.
    """
    if not hasattr(workload, "program_words") and hasattr(
        workload, "workload"
    ):
        workload = workload.workload
    return fingerprint_payload(
        {
            "name": workload.name,
            "program_words": [int(w) for w in workload.program_words],
            "phases": [
                {
                    "index": int(phase.index),
                    "name": phase.name,
                    "chunk_base": int(phase.chunk_base),
                    "chunk_words": int(phase.chunk_words),
                }
                for phase in workload.phases
            ],
            "data_words": [int(w) for w in workload.data_words],
            "data_base": int(workload.data_base),
            "result_base": int(workload.result_base),
            "result_words": int(workload.result_words),
        }
    )


def golden_fingerprint(golden: Any) -> str:
    """Digest of a golden output word list."""
    return fingerprint_payload({"golden": [int(w) for w in golden]})


def _normalize_kwargs(kwargs: Mapping[str, Any]) -> Dict[str, Any]:
    """JSON-stable form of runner kwargs (repr for non-primitives)."""
    normalized: Dict[str, Any] = {}
    for key in sorted(kwargs):
        value = kwargs[key]
        if value is None or isinstance(value, (bool, int, float, str)):
            normalized[key] = value
        else:
            normalized[key] = repr(value)
    return normalized


def scheme_campaign_key(
    scheme: str,
    workload: Any,
    golden: Any,
    access_model: Any,
    vdd: float,
    frequency: float,
    runs: int,
    seed_base: int,
    lanes: int,
    runner_kwargs: Mapping[str, Any],
) -> PointKey:
    """Key of one full (scheme, vdd) platform campaign."""
    vdd = validate_vdd(vdd, "scheme_campaign_key")
    return PointKey.from_provenance(
        "scheme-campaign",
        {
            "scheme": scheme,
            "workload": workload_fingerprint(workload),
            "golden": golden_fingerprint(golden),
            "access_model": access_model_provenance(access_model),
            "vdd": float(vdd),
            "frequency": float(frequency),
            "runs": int(runs),
            "seed_base": int(seed_base),
            "lanes": int(lanes),
            "runner_kwargs": _normalize_kwargs(runner_kwargs),
        },
    )


def fig5_point_key(
    access_model: Any,
    vdd: float,
    accesses: int,
    bits: int,
    seed: int,
    index: int,
) -> PointKey:
    """Key of one Fig. 5 access-BER grid point.

    The child stream is ``default_rng((seed, index))``, so the point is
    keyed by the master seed and its grid index — not by the voltage's
    position in any particular sweep request.
    """
    vdd = validate_vdd(vdd, "fig5_point_key")
    return PointKey.from_provenance(
        "fig5-point",
        {
            "access_model": access_model_provenance(access_model),
            "vdd": float(vdd),
            "accesses": int(accesses),
            "bits": int(bits),
            "seed": int(seed),
            "index": int(index),
        },
    )


def retention_die_key(
    base_retention: Any,
    access_model: Any,
    words: int,
    bits: int,
    seed: int,
    n_dies: int,
    die_sigma_v: float,
    die_index: int,
    voltages: "np.ndarray",
) -> PointKey:
    """Key of one Fig. 4 die.

    The die's offset and child seed both derive from the master stream
    sequentially over all ``n_dies``, so the key includes the master
    seed, the population size and sigma, and the die's index — plus the
    voltage grid digest, because the stored payload is the per-voltage
    failing-bit count vector.
    """
    grid = np.ascontiguousarray(np.asarray(voltages, dtype=float))
    return PointKey.from_provenance(
        "fig4-die",
        {
            "retention": repr(base_retention),
            "access_model": access_model_provenance(access_model),
            "words": int(words),
            "bits": int(bits),
            "seed": int(seed),
            "n_dies": int(n_dies),
            "die_sigma_v": float(die_sigma_v),
            "die_index": int(die_index),
            "voltages": hashlib.sha256(grid.tobytes()).hexdigest(),
        },
    )


__all__ = [
    "KEY_SCHEMA",
    "PointKey",
    "access_model_provenance",
    "canonical_json",
    "fig5_point_key",
    "fingerprint_payload",
    "fingerprint_provenance",
    "golden_fingerprint",
    "retention_die_key",
    "scheme_campaign_key",
    "workload_fingerprint",
]
