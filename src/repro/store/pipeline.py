"""Plan → probe → execute → store → assemble for campaign grids.

This module is the glue between the campaign drivers and the result
store: it gives :class:`~repro.analysis.campaign.CampaignResult` an
exact JSON codec (decode is bit-identical under dataclass equality —
``resilience`` is excluded from comparison by the dataclass itself),
builds the content-addressed key for a campaign invocation, and drives
whole (scheme × voltage) grids through the store so warm points are
answered without touching an engine.

Warm results are distinguishable from fresh ones by construction: a
fresh :class:`CampaignResult` carries its ``resilience``
:class:`~repro.resilience.ExecutionReport`, a decoded one carries
``resilience=None``.  The grid planner uses exactly that to report hit
/ executed counts, and the perf harness uses dataclass equality to
prove mixed cached+fresh assembly bit-identical to a cold run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.campaign import CampaignResult
from repro.core.errors import validate_vdd
from repro.obs import active_metrics, names
from repro.store.keys import PointKey, scheme_campaign_key


def encode_campaign_result(result: CampaignResult) -> Dict[str, Any]:
    """JSON-safe payload of a :class:`CampaignResult` (exact round-trip)."""
    return {
        "scheme": result.scheme,
        "vdd": float(result.vdd),
        "runs": int(result.runs),
        "correct": int(result.correct),
        "silent_corruption": int(result.silent_corruption),
        "detected_failure": int(result.detected_failure),
        "total_injected_bits": int(result.total_injected_bits),
        "total_corrected": int(result.total_corrected),
        "total_rollbacks": int(result.total_rollbacks),
        "failures_by_kind": {
            kind: int(count)
            for kind, count in sorted(result.failures_by_kind.items())
        },
        "quarantined": int(result.quarantined),
    }


def decode_campaign_result(payload: Dict[str, Any]) -> CampaignResult:
    """Inverse of :func:`encode_campaign_result`.

    The decoded result compares equal (``==``) to the original: every
    compared field round-trips exactly through JSON (ints, the scheme
    string, the float vdd via ``repr`` round-tripping), and
    ``resilience`` is excluded from dataclass equality.
    """
    return CampaignResult(
        scheme=str(payload["scheme"]),
        vdd=float(payload["vdd"]),
        runs=int(payload["runs"]),
        correct=int(payload["correct"]),
        silent_corruption=int(payload["silent_corruption"]),
        detected_failure=int(payload["detected_failure"]),
        total_injected_bits=int(payload["total_injected_bits"]),
        total_corrected=int(payload["total_corrected"]),
        total_rollbacks=int(payload["total_rollbacks"]),
        failures_by_kind={
            str(kind): int(count)
            for kind, count in payload["failures_by_kind"].items()
        },
        quarantined=int(payload["quarantined"]),
    )


def campaign_point_key(
    runner_cls: Any,
    workload: Any,
    golden: Any,
    access_model: Any,
    vdd: float,
    frequency: float,
    runs: int,
    seed_base: int,
    lanes: int,
    runner_kwargs: Dict[str, Any],
) -> PointKey:
    """Content-addressed key of one ``run_campaign`` invocation."""
    vdd = validate_vdd(vdd, "campaign_point_key")
    return scheme_campaign_key(
        scheme=runner_cls.name,
        workload=workload,
        golden=golden,
        access_model=access_model,
        vdd=vdd,
        frequency=frequency,
        runs=runs,
        seed_base=seed_base,
        lanes=lanes,
        runner_kwargs=runner_kwargs,
    )


def publish_cached_campaign_metrics(result: CampaignResult) -> None:
    """Re-emit the campaign-level counters for a store-served result.

    Warm answers skip the engines entirely, so layer counters
    (``faults.*``, ``platform.*``) and per-run trace points do not
    reappear — but the campaign totals do, keeping dashboards that sum
    ``campaign.*`` counters consistent whether a result was computed
    or served.
    """
    metrics = active_metrics()
    metrics.counter(names.CAMPAIGN_RUNS).inc(result.runs)
    metrics.counter(names.CAMPAIGN_CORRECT).inc(result.correct)
    metrics.counter(names.CAMPAIGN_SILENT_CORRUPTION).inc(
        result.silent_corruption
    )
    metrics.counter(names.CAMPAIGN_DETECTED_FAILURE).inc(
        result.detected_failure
    )
    metrics.counter(names.CAMPAIGN_INJECTED_BITS).inc(
        result.total_injected_bits
    )
    metrics.counter(names.CAMPAIGN_CORRECTED_WORDS).inc(result.total_corrected)
    metrics.counter(names.CAMPAIGN_ROLLBACKS).inc(result.total_rollbacks)
    if result.quarantined:
        metrics.counter(names.CAMPAIGN_QUARANTINED_RUNS).inc(
            result.quarantined
        )


@dataclass
class GridResult:
    """A (scheme × voltage) grid with its cache accounting."""

    results: List[CampaignResult] = field(default_factory=list)
    hits: int = 0
    executed_points: int = 0

    @property
    def total_points(self) -> int:
        return len(self.results)

    @property
    def hit_ratio(self) -> float:
        if not self.results:
            return 0.0
        return self.hits / len(self.results)


def scheme_failure_grid(
    runner_cls: Any,
    workload: Any,
    golden: Any,
    access_model: Any,
    vdds: Any,
    store: Any = None,
    frequency: float = 290e3,
    runs: int = 20,
    seed_base: int = 100,
    on_point: Optional[Callable[[int, int, CampaignResult], None]] = None,
    progress_factory: Optional[Callable[[int, int], Any]] = None,
    **campaign_kwargs: Any,
) -> GridResult:
    """Run a whole voltage grid for one scheme through the store.

    Each voltage point is planned, probed against ``store`` (when
    given), and executed only on a miss — fresh points are published
    back before assembly.  ``on_point(index, total, result)`` fires
    after each point (the serving layer's progress hook; raising from
    it aborts the grid, which is exactly what the chaos test does).
    ``progress_factory(index, total)`` may return a per-point
    :class:`~repro.obs.report.CampaignProgress` observer.
    """
    from repro.analysis.campaign import run_campaign

    vdd_list = [validate_vdd(float(v), "scheme_failure_grid") for v in vdds]
    grid = GridResult()
    total = len(vdd_list)
    for index, vdd in enumerate(vdd_list):
        progress = (
            progress_factory(index, total) if progress_factory else None
        )
        result = run_campaign(
            runner_cls,
            workload,
            golden,
            access_model,
            vdd,
            frequency=frequency,
            runs=runs,
            seed_base=seed_base,
            store=store,
            progress=progress,
            **campaign_kwargs,
        )
        grid.results.append(result)
        if store is not None and result.resilience is None:
            grid.hits += 1
        else:
            grid.executed_points += 1
        if on_point is not None:
            on_point(index, total, result)
    return grid


__all__ = [
    "GridResult",
    "campaign_point_key",
    "decode_campaign_result",
    "encode_campaign_result",
    "publish_cached_campaign_metrics",
    "scheme_failure_grid",
]
