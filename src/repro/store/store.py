"""Append-safe content-addressed result store.

SQLite (stdlib ``sqlite3``) holds one row per campaign point, keyed by
the point's provenance fingerprint (:mod:`repro.store.keys`).  Three
layers of safety sit on top of the database file:

* **NDJSON sidecar** — every ``put`` also appends the full record to
  ``<store>.ndjson`` through the sanctioned
  :class:`~repro.obs.trace.NdjsonFileSink` serializer.  The sidecar is
  the recovery source *and* the portable interchange format
  (:meth:`ResultStore.export_ndjson` / :meth:`import_ndjson`); its
  reader tolerates a torn final line, so a crash mid-append loses at
  most the record being written.
* **Torn-write recovery on open** — if the SQLite file fails its
  integrity probe (truncated or corrupted by a torn write), the broken
  file is set aside as ``<store>.corrupt`` and the store is rebuilt
  from the sidecar.  A missing database next to a non-empty sidecar
  rebuilds the same way.
* **Probe-time verification** — every database hit re-fingerprints the
  stored provenance; a mismatch means the row is lying about its key,
  so it is deleted and reported as a miss (``store.corrupt_entries``).

An in-process LRU front cache short-circuits repeated probes without
touching SQLite; connections are opened per operation so concurrent
writers (multiple processes sharing one store file) serialize through
SQLite's own locking rather than sharing connection state.

The store is deliberately clock-free and identity-free: no wall-clock,
PID, hostname or OS entropy anywhere (rule ``REP103``), so ``gc`` is
insertion-order based (keep the newest N rows), not age-based.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs import active_metrics, active_tracer, names
from repro.obs.report import read_ndjson
from repro.obs.trace import NdjsonFileSink
from repro.store.keys import PointKey, canonical_json, fingerprint_provenance

PathLike = Union[str, "os.PathLike[str]"]

#: Store file layout version (table shape + record fields).
STORE_SCHEMA = 1

_CREATE = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    provenance TEXT NOT NULL,
    payload TEXT NOT NULL,
    schema INTEGER NOT NULL
)
"""

#: Stat keys mirror the registered ``store.*`` counter family.
_STAT_KEYS = tuple(sorted(names.STORE_METRIC_FIELDS))


class ResultStore:
    """Content-addressed campaign result store with an LRU front cache."""

    def __init__(
        self,
        path: PathLike,
        lru_capacity: int = 1024,
    ) -> None:
        self.path = Path(path)
        self.sidecar_path = self.path.with_name(self.path.name + ".ndjson")
        if lru_capacity < 0:
            raise ValueError("lru_capacity must be non-negative")
        self.lru_capacity = int(lru_capacity)
        self._lru: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.RLock()
        self._inflight: Dict[str, threading.Event] = {}
        self._stats: Dict[str, int] = {key: 0 for key in _STAT_KEYS}
        self._open()

    # ------------------------------------------------------------------
    # Lifecycle / recovery
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        return conn

    def _open(self) -> None:
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        existed = self.path.exists()
        try:
            conn = self._connect()
            try:
                conn.execute(_CREATE)
                row = conn.execute("SELECT COUNT(*) FROM results").fetchone()
                conn.commit()
            finally:
                conn.close()
        except sqlite3.DatabaseError:
            self._recover("sqlite-corrupt")
            return
        rows = int(row[0])
        if not existed or rows == 0:
            # Database lost (or freshly created) next to an existing
            # sidecar: rebuild silently from the append log.
            if self.sidecar_path.exists():
                imported = self._import_records(
                    read_ndjson(self.sidecar_path), append_sidecar=False
                )
                if imported:
                    self._count("recoveries", 1)
                    active_tracer().point(
                        names.POINT_STORE_RECOVERY,
                        reason="sidecar-rebuild",
                        recovered=imported,
                        path=str(self.path),
                    )

    def _recover(self, reason: str) -> None:
        """Set the broken database aside and rebuild from the sidecar."""
        corrupt = self.path.with_name(self.path.name + ".corrupt")
        if self.path.exists():
            os.replace(self.path, corrupt)
        conn = self._connect()
        try:
            conn.execute(_CREATE)
            conn.commit()
        finally:
            conn.close()
        recovered = self._import_records(
            read_ndjson(self.sidecar_path), append_sidecar=False
        )
        self._count("recoveries", 1)
        active_tracer().point(
            names.POINT_STORE_RECOVERY,
            reason=reason,
            recovered=recovered,
            path=str(self.path),
        )

    # ------------------------------------------------------------------
    # Core probe / publish
    # ------------------------------------------------------------------
    def get(self, key: PointKey) -> Optional[Dict[str, Any]]:
        """Return the stored payload for ``key``, or ``None`` on miss."""
        return self._get(key.fingerprint())

    def _get(self, fingerprint: str, count: bool = True) -> Optional[Dict[str, Any]]:
        with self._lock:
            payload = self._lru.get(fingerprint)
            if payload is not None:
                self._lru.move_to_end(fingerprint)
                if count:
                    self._count("hits", 1)
                    self._count("front_hits", 1)
                return payload
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT provenance, payload FROM results "
                "WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:
                if count:
                    self._count("misses", 1)
                return None
            provenance = json.loads(row[0])
            if fingerprint_provenance(provenance) != fingerprint:
                # The row's provenance no longer hashes to its key:
                # the entry is corrupt.  Drop it and report a miss.
                conn.execute(
                    "DELETE FROM results WHERE fingerprint = ?",
                    (fingerprint,),
                )
                conn.commit()
                self._count("corrupt_entries", 1)
                if count:
                    self._count("misses", 1)
                return None
            payload = json.loads(row[1])
        finally:
            conn.close()
        assert isinstance(payload, dict)
        with self._lock:
            self._lru_insert(fingerprint, payload)
        if count:
            self._count("hits", 1)
        return payload

    def put(self, key: PointKey, payload: Dict[str, Any]) -> str:
        """Publish ``payload`` under ``key``; returns the fingerprint."""
        fingerprint = key.fingerprint()
        provenance = key.provenance()
        record = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "kind": key.kind,
            "provenance": provenance,
            "payload": payload,
        }
        conn = self._connect()
        try:
            conn.execute(
                "INSERT OR REPLACE INTO results "
                "(fingerprint, kind, provenance, payload, schema) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    fingerprint,
                    key.kind,
                    canonical_json(provenance),
                    canonical_json(payload),
                    STORE_SCHEMA,
                ),
            )
            conn.commit()
        finally:
            conn.close()
        sink = NdjsonFileSink(self.sidecar_path, flush_each=True)
        try:
            sink.emit(record)
        finally:
            sink.close()
        with self._lock:
            self._lru_insert(fingerprint, payload)
        self._count("puts", 1)
        return fingerprint

    def _lru_insert(self, fingerprint: str, payload: Dict[str, Any]) -> None:
        if self.lru_capacity == 0:
            return
        self._lru[fingerprint] = payload
        self._lru.move_to_end(fingerprint)
        while len(self._lru) > self.lru_capacity:
            self._lru.popitem(last=False)
            self._count("evictions", 1)

    # ------------------------------------------------------------------
    # In-flight deduplication
    # ------------------------------------------------------------------
    def begin_compute(self, fingerprint: str) -> Tuple[bool, threading.Event]:
        """Claim ``fingerprint`` for computation.

        Returns ``(owner, event)``: the first caller becomes the owner
        and must call :meth:`end_compute` when done (success *or*
        failure); later callers get ``owner=False`` and should wait on
        the event, then re-probe.
        """
        with self._lock:
            event = self._inflight.get(fingerprint)
            if event is None:
                event = threading.Event()
                self._inflight[fingerprint] = event
                return True, event
            return False, event

    def note_inflight_wait(self) -> None:
        """Record that a caller blocked behind an in-flight compute."""
        self._count("inflight_waits", 1)

    def end_compute(self, fingerprint: str) -> None:
        """Release an in-flight claim and wake all waiters."""
        with self._lock:
            event = self._inflight.pop(fingerprint, None)
        if event is not None:
            event.set()

    def fetch_or_compute(
        self,
        key: PointKey,
        compute: Callable[[], Dict[str, Any]],
    ) -> Tuple[Dict[str, Any], bool]:
        """Return ``(payload, was_cached)``, computing at most once.

        Identical concurrent calls in one process collapse onto a
        single computation: the first caller computes and publishes,
        the rest block on its in-flight event and read the stored
        result.  If the owner fails, one waiter takes over.
        """
        fingerprint = key.fingerprint()
        while True:
            payload = self._get(fingerprint)
            if payload is not None:
                return payload, True
            owner, event = self.begin_compute(fingerprint)
            if owner:
                break
            self.note_inflight_wait()
            event.wait()
        try:
            payload = compute()
            self.put(key, payload)
        finally:
            self.end_compute(fingerprint)
        return payload, False

    # ------------------------------------------------------------------
    # Import / export / maintenance
    # ------------------------------------------------------------------
    def export_ndjson(self, path: PathLike) -> int:
        """Write every row (insertion order) to ``path``; returns count."""
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT fingerprint, kind, provenance, payload, schema "
                "FROM results ORDER BY rowid"
            ).fetchall()
        finally:
            conn.close()
        # Truncate, then append through the sanctioned serializer.
        open(path, "w", encoding="utf-8").close()
        sink = NdjsonFileSink(path, flush_each=False)
        try:
            for fingerprint, kind, provenance, payload, schema in rows:
                sink.emit(
                    {
                        "schema": int(schema),
                        "fingerprint": fingerprint,
                        "kind": kind,
                        "provenance": json.loads(provenance),
                        "payload": json.loads(payload),
                    }
                )
        finally:
            sink.close()
        self._count("exported", len(rows))
        return len(rows)

    def import_ndjson(self, path: PathLike) -> int:
        """Merge records from an NDJSON export; returns imported count.

        Records whose stored fingerprint does not match their
        provenance are skipped (and counted as corrupt), so a tampered
        or torn export can never poison the store.
        """
        return self._import_records(read_ndjson(path), append_sidecar=True)

    def _import_records(
        self, records: List[Dict[str, Any]], append_sidecar: bool
    ) -> int:
        imported = 0
        for record in records:
            provenance = record.get("provenance")
            payload = record.get("payload")
            fingerprint = record.get("fingerprint")
            kind = record.get("kind")
            if (
                not isinstance(provenance, dict)
                or not isinstance(payload, dict)
                or not isinstance(fingerprint, str)
                or not isinstance(kind, str)
            ):
                self._count("corrupt_entries", 1)
                continue
            if fingerprint_provenance(provenance) != fingerprint:
                self._count("corrupt_entries", 1)
                continue
            key = PointKey(kind=kind, provenance_json=canonical_json(provenance))
            if append_sidecar:
                self.put(key, payload)
            else:
                conn = self._connect()
                try:
                    conn.execute(
                        "INSERT OR REPLACE INTO results "
                        "(fingerprint, kind, provenance, payload, schema) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (
                            fingerprint,
                            kind,
                            canonical_json(provenance),
                            canonical_json(payload),
                            int(record.get("schema", STORE_SCHEMA)),
                        ),
                    )
                    conn.commit()
                finally:
                    conn.close()
            imported += 1
        if append_sidecar:
            self._count("imported", imported)
        return imported

    def entries(self) -> List[Dict[str, Any]]:
        """Row summaries in insertion order (``repro cache ls``)."""
        conn = self._connect()
        try:
            rows = conn.execute(
                "SELECT fingerprint, kind, provenance FROM results "
                "ORDER BY rowid"
            ).fetchall()
        finally:
            conn.close()
        return [
            {
                "fingerprint": fingerprint,
                "kind": kind,
                "provenance": json.loads(provenance),
            }
            for fingerprint, kind, provenance in rows
        ]

    def __len__(self) -> int:
        conn = self._connect()
        try:
            row = conn.execute("SELECT COUNT(*) FROM results").fetchone()
        finally:
            conn.close()
        return int(row[0])

    def gc(self, keep: int) -> int:
        """Keep the newest ``keep`` rows (insertion order), drop the rest.

        Clock-free by design: eviction is by insertion recency, not
        age, so the store never needs a timestamp.  The sidecar is
        rewritten to match the surviving rows.
        """
        if keep < 0:
            raise ValueError("keep must be non-negative")
        conn = self._connect()
        try:
            removed_rows = conn.execute(
                "SELECT fingerprint FROM results ORDER BY rowid DESC "
                "LIMIT -1 OFFSET ?",
                (keep,),
            ).fetchall()
            conn.executemany(
                "DELETE FROM results WHERE fingerprint = ?",
                removed_rows,
            )
            conn.commit()
        finally:
            conn.close()
        removed = len(removed_rows)
        with self._lock:
            for (fingerprint,) in removed_rows:
                self._lru.pop(fingerprint, None)
        self.export_ndjson(self.sidecar_path)
        self._count("gc_removed", removed)
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cumulative operation counters plus the current row count."""
        with self._lock:
            snapshot = dict(self._stats)
            front_cache_entries = len(self._lru)
        snapshot["rows"] = len(self)
        snapshot["front_cache_entries"] = front_cache_entries
        return snapshot

    def _count(self, stat: str, n: int) -> None:
        if n == 0:
            return
        with self._lock:
            self._stats[stat] += n
        active_metrics().counter(names.store_metric(stat)).inc(n)


__all__ = ["STORE_SCHEMA", "ResultStore"]
