"""Technology and device substrate.

This subpackage models the process-technology layer the paper builds on:
an EKV-style MOSFET drive-current model that is valid from sub-threshold
through near-threshold to strong inversion, Pelgrom-style mismatch
statistics, per-node parameter sets (65/40 nm planar low-power, 14 nm
finFET, 10 nm multi-gate), logic delay versus supply voltage, and
sub-threshold leakage.  Section VI of the paper (Figure 10) is generated
entirely from this layer.
"""

from repro.tech.device import (
    BOLTZMANN_EV,
    DeviceParameters,
    drive_current,
    inversion_coefficient,
    thermal_voltage,
)
from repro.tech.mismatch import (
    MismatchModel,
    sample_vth_shifts,
    sigma_vth,
)
from repro.tech.node import (
    NODE_10NM_MG,
    NODE_14NM_FINFET,
    NODE_40NM_LP,
    NODE_65NM_LP,
    Corner,
    TechnologyNode,
    get_node,
    list_nodes,
)
from repro.tech.delay import (
    InverterDelayResult,
    inverter_delay,
    logic_max_frequency,
    minimum_voltage_for_frequency,
    monte_carlo_inverter_delay,
)
from repro.tech.leakage import (
    leakage_current_per_um,
    leakage_power,
)

__all__ = [
    "BOLTZMANN_EV",
    "DeviceParameters",
    "drive_current",
    "inversion_coefficient",
    "thermal_voltage",
    "MismatchModel",
    "sample_vth_shifts",
    "sigma_vth",
    "Corner",
    "TechnologyNode",
    "NODE_65NM_LP",
    "NODE_40NM_LP",
    "NODE_14NM_FINFET",
    "NODE_10NM_MG",
    "get_node",
    "list_nodes",
    "InverterDelayResult",
    "inverter_delay",
    "logic_max_frequency",
    "minimum_voltage_for_frequency",
    "monte_carlo_inverter_delay",
    "leakage_current_per_um",
    "leakage_power",
]
