"""Logic delay versus supply voltage.

The inverter delay is modelled as the time the switching device needs
to move the load charge:

    t_inv = k * C_load * V_DD / I_on(V_DD)

with I_on from the EKV drive-current model, so the delay grows
polynomially above threshold and exponentially below — the behaviour
Figure 10 plots for the 14 nm and 10 nm devices.  The Monte-Carlo
variant resamples the device threshold per trial and returns the mean
and sigma of the delay distribution, reproducing both series of the
figure (mean delay and sigma spread).

The same delay model also provides the *performance floor* of the
mitigation study: Table 2's 1.96 MHz row forces OCEAN up from 0.33 V to
0.44 V purely because the logic cannot meet frequency any lower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import validate_vdd
from repro.tech.device import drive_current
from repro.tech.mismatch import sigma_vth
from repro.tech.node import TechnologyNode

#: Dimensionless delay fit factor (Elmore-style 0.69 plus margin for the
#: short-circuit and slope contributions of a real FO4 stage).
_DELAY_FIT = 0.9

#: Effective load of a fanout-of-4 inverter stage, in microns of gate
#: width per micron of driver width (4x gate plus local wire).
_FO4_LOAD_FACTOR = 5.0

#: Driver width in microns used for the representative inverter.
_DRIVER_WIDTH_UM = 1.0


def inverter_delay(
    node: TechnologyNode,
    vdd: float,
    temperature_c: float = 25.0,
    vth_shift: float = 0.0,
) -> float:
    """Return the FO4 inverter delay in seconds at supply ``vdd``.

    ``vth_shift`` adds a local threshold offset (in volts) to the
    switching device, which is how Monte-Carlo mismatch enters.
    """
    vdd = validate_vdd(vdd, context="inverter_delay")
    if vdd == 0.0:
        raise ValueError("vdd must be positive: a 0 V inverter never switches")
    load_ff = node.gate_cap_ff_per_um * _FO4_LOAD_FACTOR * _DRIVER_WIDTH_UM
    # NMOS and PMOS alternate in a logic chain; use the slower average.
    currents = []
    for device in (node.nmos, node.pmos):
        shifted = device.with_vth_shift(vth_shift)
        currents.append(
            drive_current(
                shifted, vdd, vdd, width_um=_DRIVER_WIDTH_UM,
                temperature_c=temperature_c,
            )
        )
    i_on = 2.0 / (1.0 / currents[0] + 1.0 / currents[1])
    return _DELAY_FIT * load_ff * 1e-15 * vdd / i_on


@dataclass(frozen=True)
class InverterDelayResult:
    """Monte-Carlo inverter-delay statistics at one supply point."""

    vdd: float
    mean: float
    sigma: float
    samples: int

    @property
    def sigma_over_mean(self) -> float:
        """Relative spread; Figure 10's second message is that this
        shrinks from 14 nm to 10 nm."""
        return self.sigma / self.mean


def monte_carlo_inverter_delay(
    node: TechnologyNode,
    vdd: float,
    samples: int = 2000,
    temperature_c: float = 25.0,
    rng: np.random.Generator | None = None,
    width_um: float = 0.2,
    length_um: float = 0.04,
) -> InverterDelayResult:
    """Return mean and sigma of the inverter delay under local mismatch.

    ``width_um`` / ``length_um`` set the mismatch area of the sampled
    device (minimum-size logic devices by default, which is the
    pessimistic case the paper cares about).
    """
    if samples <= 1:
        raise ValueError(f"need at least 2 samples, got {samples}")
    rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[REP101] mismatch sweeps are exploratory; callers pass a seeded rng for reproducible figures
    sigma = sigma_vth(node.nmos.avt_mv_um, width_um, length_um)
    shifts = rng.normal(0.0, sigma, size=samples)
    delays = np.array(
        [
            inverter_delay(node, vdd, temperature_c, vth_shift=float(shift))
            for shift in shifts
        ]
    )
    return InverterDelayResult(
        vdd=vdd,
        mean=float(delays.mean()),
        sigma=float(delays.std(ddof=1)),
        samples=samples,
    )


def logic_max_frequency(
    node: TechnologyNode,
    vdd: float,
    temperature_c: float = 25.0,
    guardband_sigma: float = 3.0,
    width_um: float = 0.2,
    length_um: float = 0.04,
) -> float:
    """Return the maximum clock frequency in hertz at supply ``vdd``.

    The critical path is ``node.logic_depth`` FO4 stages; a
    ``guardband_sigma``-sigma mismatch penalty is applied analytically
    (slowing the device by that many sigmas of V_th) so the returned
    frequency is a yield-aware number, matching the paper's use of
    worst-case timing for the voltage floor.
    """
    sigma = sigma_vth(node.nmos.avt_mv_um, width_um, length_um)
    slow = inverter_delay(
        node, vdd, temperature_c, vth_shift=guardband_sigma * sigma
    )
    period = node.logic_depth * slow
    return 1.0 / period


def minimum_voltage_for_frequency(
    node: TechnologyNode,
    frequency_hz: float,
    temperature_c: float = 25.0,
    vdd_low: float = 0.15,
    vdd_high: float = 1.4,
    tolerance: float = 1e-4,
) -> float:
    """Return the lowest supply at which the logic meets ``frequency_hz``.

    Bisects ``logic_max_frequency`` (monotonic in V_DD).  Raises
    ``ValueError`` if the frequency is unreachable even at ``vdd_high``.
    """
    if frequency_hz <= 0.0:
        raise ValueError("frequency_hz must be positive")
    if logic_max_frequency(node, vdd_high, temperature_c) < frequency_hz:
        raise ValueError(
            f"{frequency_hz:.3g} Hz unreachable at {vdd_high} V on {node.name}"
        )
    if logic_max_frequency(node, vdd_low, temperature_c) >= frequency_hz:
        return vdd_low
    low, high = vdd_low, vdd_high
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if logic_max_frequency(node, mid, temperature_c) >= frequency_hz:
            high = mid
        else:
            low = mid
    return high


def delay_scaling_factor(
    fast: TechnologyNode, slow: TechnologyNode, vdd: float
) -> float:
    """Return how much faster ``fast`` is than ``slow`` at equal ``vdd``.

    Section VI quotes a 2x speed-up from 14 nm to 10 nm; this helper
    exposes that ratio: values > 1 mean ``fast`` wins.
    """
    return inverter_delay(slow, vdd) / inverter_delay(fast, vdd)


def _self_check() -> None:
    """Sanity anchor used by tests: delay must rise steeply near V_th."""
    from repro.tech.node import NODE_40NM_LP

    near = inverter_delay(NODE_40NM_LP, 0.45)
    nominal = inverter_delay(NODE_40NM_LP, 1.1)
    if not near > 10.0 * nominal:
        raise AssertionError(
            f"near-threshold delay {near:.3g}s should dwarf nominal "
            f"{nominal:.3g}s"
        )


if __name__ == "__main__":  # pragma: no cover - manual smoke run
    _self_check()
    print("delay model self-check passed")
