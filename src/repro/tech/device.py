"""EKV-style MOSFET drive-current model.

The paper's Section VI compares planar 40 nm devices with 14 nm finFET
and 10 nm multi-gate devices in the near-threshold regime, where neither
the classic quadratic (strong inversion) nor the pure exponential
(sub-threshold) current law holds on its own.  The EKV interpolation

    I_D = I_spec * ln(1 + exp(v_ov / (2 * n * U_T)))**2

is smooth across the whole inversion range: it reduces to the
exponential law deep in sub-threshold and to the square law in strong
inversion.  That behaviour is exactly what near-threshold delay and
leakage modelling needs, so it is the single current expression used by
every higher layer (delay, leakage, memory timing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Boltzmann constant expressed in eV/K so that ``k*T`` is directly a voltage.
BOLTZMANN_EV = 8.617333262e-5

_LN10 = math.log(10.0)


def thermal_voltage(temperature_c: float = 25.0) -> float:
    """Return the thermal voltage U_T = k*T/q in volts.

    ``temperature_c`` is the junction temperature in degrees Celsius;
    the paper's measurements are quoted at 25 C (Table 1).
    """
    return BOLTZMANN_EV * (temperature_c + 273.15)


@dataclass(frozen=True)
class DeviceParameters:
    """Compact parameter set for one transistor flavour of a node.

    Attributes
    ----------
    vth:
        Threshold voltage in volts (TT corner, 25 C).
    subthreshold_slope_mv:
        Sub-threshold swing in mV/decade at 25 C.  Planar 40 nm LP is
        around 90 mV/dec; finFETs approach the 60 mV/dec ideal, which is
        the paper's main argument for finFET NTC (Section VI).
    i_spec_ua_per_um:
        Specific current in microamperes per micron of effective width:
        the drive current when the overdrive equals zero (V_GS = V_th).
    dibl_mv_per_v:
        Drain-induced barrier lowering in mV of threshold shift per volt
        of V_DS.  Drives the leakage increase with supply voltage.
    avt_mv_um:
        Pelgrom threshold-mismatch coefficient in mV*um: the standard
        deviation of the V_th difference of a matched pair of 1 um x 1 um
        devices.  Section VI stresses that keeping A_vt under control is
        what makes finFET NTC memories viable.
    """

    vth: float
    subthreshold_slope_mv: float
    i_spec_ua_per_um: float
    dibl_mv_per_v: float
    avt_mv_um: float

    def __post_init__(self) -> None:
        if self.vth <= 0.0:
            raise ValueError(f"vth must be positive, got {self.vth}")
        min_slope = 1000.0 * thermal_voltage(25.0) * _LN10
        if self.subthreshold_slope_mv < min_slope:
            raise ValueError(
                "subthreshold slope cannot beat the thermionic limit "
                f"({min_slope:.1f} mV/dec at 25 C), got "
                f"{self.subthreshold_slope_mv}"
            )
        if self.i_spec_ua_per_um <= 0.0:
            raise ValueError("i_spec_ua_per_um must be positive")
        if self.dibl_mv_per_v < 0.0:
            raise ValueError("dibl_mv_per_v must be non-negative")
        if self.avt_mv_um <= 0.0:
            raise ValueError("avt_mv_um must be positive")

    def slope_factor(self) -> float:
        """Return the sub-threshold slope factor n (dimensionless).

        Defined through SS = n * U_T * ln(10) at the 25 C reference the
        ``subthreshold_slope_mv`` figure is quoted at.  n itself is a
        capacitive divider (1 + C_dep/C_ox) and essentially temperature
        independent; temperature enters the current laws through U_T,
        which is what produces the near-threshold temperature-inversion
        behaviour.
        """
        return self.subthreshold_slope_mv / (
            1000.0 * thermal_voltage(25.0) * _LN10
        )

    def with_vth_shift(self, delta_vth: float) -> "DeviceParameters":
        """Return a copy with the threshold shifted by ``delta_vth`` volts.

        Used both for PVT corners (global shift) and for per-device
        Monte-Carlo mismatch samples (local shift).
        """
        return replace(self, vth=self.vth + delta_vth)


def inversion_coefficient(
    device: DeviceParameters,
    vgs: float,
    vds: float | None = None,
    temperature_c: float = 25.0,
) -> float:
    """Return the EKV inversion coefficient IC = I_D / I_spec.

    IC < 0.1 is weak inversion, 0.1..10 the moderate (near-threshold)
    region the paper operates in, and IC > 10 strong inversion.
    """
    if vds is None:
        vds = vgs
    n = device.slope_factor()
    ut = thermal_voltage(temperature_c)
    overdrive = vgs - device.vth + 1e-3 * device.dibl_mv_per_v * vds
    x = overdrive / (2.0 * n * ut)
    # log1p(exp(x)) computed stably for large positive x.
    if x > 40.0:
        soft = x
    else:
        soft = math.log1p(math.exp(x))
    return soft * soft


def drive_current(
    device: DeviceParameters,
    vgs: float,
    vds: float | None = None,
    width_um: float = 1.0,
    temperature_c: float = 25.0,
) -> float:
    """Return the drain current in amperes for the given bias point.

    ``vgs`` and ``vds`` are in volts; ``vds`` defaults to ``vgs`` which
    is the switching condition of a CMOS gate at the start of a
    transition.  The current scales linearly with ``width_um``.
    """
    if width_um <= 0.0:
        raise ValueError(f"width_um must be positive, got {width_um}")
    ic = inversion_coefficient(device, vgs, vds, temperature_c)
    return ic * device.i_spec_ua_per_um * 1e-6 * width_um
