"""Sub-threshold leakage versus supply voltage.

Section II of the paper: leakage power is "to the first order
proportional to the total transistor count which is dominated by the
memories", and supply-voltage scaling buys "up to 10x better static
power".  The model here captures the two supply dependencies that
matter at near-threshold:

* the leaking device sees V_DS = V_DD, so DIBL lowers its threshold
  and raises the off current roughly exponentially with V_DD;
* static power is I_off * V_DD on top of that.

Together they give the super-linear leakage-power drop with voltage
that makes the Figure 1 energy-per-cycle curve bottom out and then turn
back up when the (unscaled) memory leakage starts to dominate.
"""

from __future__ import annotations

import math

from repro.core.errors import validate_vdd
from repro.tech.device import DeviceParameters, thermal_voltage

_LN10 = math.log(10.0)


def leakage_current_per_um(
    device: DeviceParameters,
    vdd: float,
    temperature_c: float = 25.0,
    vth_shift: float = 0.0,
) -> float:
    """Return the off-state drain current in amperes per micron of width.

    Evaluated at V_GS = 0, V_DS = ``vdd``; ``vth_shift`` models corner
    or mismatch offsets (a negative shift leaks more).
    """
    vdd = validate_vdd(vdd, "subthreshold_leakage")
    ut = thermal_voltage(temperature_c)
    n = device.slope_factor()
    effective_vth = device.vth + vth_shift - 1e-3 * device.dibl_mv_per_v * vdd
    # Sub-threshold current at vgs=0 relative to the specific current at
    # vgs=vth; the (1 - exp(-vds/ut)) factor kills leakage at vdd -> 0.
    i0 = device.i_spec_ua_per_um * 1e-6
    exponent = -effective_vth / (n * ut)
    saturation = -math.expm1(-vdd / ut) if vdd < 40.0 * ut else 1.0
    return i0 * math.exp(exponent) * saturation


def leakage_power(
    device: DeviceParameters,
    vdd: float,
    total_width_um: float,
    temperature_c: float = 25.0,
    vth_shift: float = 0.0,
) -> float:
    """Return static power in watts for ``total_width_um`` of leaking width.

    ``total_width_um`` aggregates every off device hanging on the supply;
    memory arrays pass their (cells x transistors x width) total here.
    """
    if total_width_um < 0.0:
        raise ValueError("total_width_um must be non-negative")
    current = leakage_current_per_um(device, vdd, temperature_c, vth_shift)
    return current * total_width_um * vdd


def leakage_reduction_ratio(
    device: DeviceParameters,
    vdd_high: float,
    vdd_low: float,
    temperature_c: float = 25.0,
) -> float:
    """Return the static-power ratio P(vdd_high) / P(vdd_low).

    The paper's Section II claims up to 10x; tests pin this ratio for
    the 40 nm node between nominal (1.1 V) and retention (~0.4 V).
    """
    high = leakage_power(device, vdd_high, 1.0, temperature_c)
    low = leakage_power(device, vdd_low, 1.0, temperature_c)
    if low <= 0.0:
        raise ValueError("leakage at vdd_low vanished; ratio undefined")
    return high / low
