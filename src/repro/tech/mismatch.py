"""Pelgrom-style local mismatch statistics.

Random dopant fluctuation and line-edge roughness make the threshold
voltage of nominally identical transistors differ.  Pelgrom's law says
the standard deviation of that difference shrinks with device area:

    sigma(V_th) = A_vt / sqrt(W * L)

This is the root cause of the paper's entire problem statement: the 6T
SRAM cell is a ratioed circuit, so V_th mismatch between its devices
erodes the noise margin, and at near-threshold voltages the erosion
turns into outright bit failures (Section II).  All Monte-Carlo cell
populations in :mod:`repro.memdev` draw their threshold shifts from
this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tech.device import DeviceParameters


def sigma_vth(avt_mv_um: float, width_um: float, length_um: float) -> float:
    """Return the V_th mismatch standard deviation in volts.

    ``avt_mv_um`` is the Pelgrom coefficient in mV*um; ``width_um`` and
    ``length_um`` are the device dimensions in microns.
    """
    if width_um <= 0.0 or length_um <= 0.0:
        raise ValueError("device dimensions must be positive")
    return 1e-3 * avt_mv_um / np.sqrt(width_um * length_um)


def sample_vth_shifts(
    avt_mv_um: float,
    width_um: float,
    length_um: float,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` independent zero-mean V_th shifts in volts."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sigma = sigma_vth(avt_mv_um, width_um, length_um)
    return rng.normal(0.0, sigma, size=count)


@dataclass(frozen=True)
class MismatchModel:
    """Mismatch sampler bound to one device flavour and geometry.

    Convenience wrapper used by the memory-array substrate: it knows the
    device's A_vt and the cell transistor geometry, so callers only ask
    for samples.
    """

    device: DeviceParameters
    width_um: float
    length_um: float

    def sigma(self) -> float:
        """Return sigma(V_th) in volts for this geometry."""
        return sigma_vth(self.device.avt_mv_um, self.width_um, self.length_um)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` V_th shifts in volts."""
        return sample_vth_shifts(
            self.device.avt_mv_um, self.width_um, self.length_um, count, rng
        )

    def sample_devices(
        self, count: int, rng: np.random.Generator
    ) -> list[DeviceParameters]:
        """Return ``count`` device-parameter copies with sampled shifts."""
        return [
            self.device.with_vth_shift(float(shift))
            for shift in self.sample(count, rng)
        ]
