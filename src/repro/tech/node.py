"""Technology-node parameter sets and PVT corners.

Four nodes cover the paper's scope:

* 65 nm planar low power — the cell-based memory of Andersson et al.
  [13] that Table 1 compares against.
* 40 nm planar low power — the paper's test-chip technology; every
  silicon measurement (Figures 3-5, Table 1) and the mitigation study
  (Section V) live here.
* 14 nm finFET and 10 nm multi-gate — the forward-looking devices of
  Section VI / Figure 10.

Numbers are representative of published low-power flavours of these
nodes; they are synthetic stand-ins for the foundry data the paper
could not publish either (it hid vendor numbers behind CACTI).  What
matters downstream is the relative behaviour: sub-threshold slope and
A_vt improve monotonically towards the finFET nodes, capacitance and
nominal voltage shrink, and drive current per micron grows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.tech.device import DeviceParameters


class Corner(enum.Enum):
    """Global process corner: shifts every device threshold together."""

    TT = "TT"
    FF = "FF"
    SS = "SS"


#: Global V_th shift per corner, as a multiple of the node's corner spread.
_CORNER_SHIFT = {Corner.TT: 0.0, Corner.FF: -1.0, Corner.SS: +1.0}


@dataclass(frozen=True)
class TechnologyNode:
    """One process node as seen by the rest of the library.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"40nm-LP"``.
    feature_nm:
        Drawn feature size in nanometres; used for area scaling.
    nmos / pmos:
        Device parameters for the two flavours.
    vdd_nominal:
        Rated supply voltage in volts.
    gate_cap_ff_per_um:
        Gate capacitance in fF per micron of width.
    wire_cap_ff_per_um:
        Wire capacitance in fF per micron of routed length; Section VI
        names its reduction as the first of the three finFET benefits.
    logic_depth:
        Representative logic depth (in FO4 inverter delays) of the
        critical path of the paper's processor platform; converts
        inverter delay into a system clock period.
    corner_vth_sigma:
        One-sigma global V_th spread in volts used by the FF/SS corners.
    """

    name: str
    feature_nm: float
    nmos: DeviceParameters
    pmos: DeviceParameters
    vdd_nominal: float
    gate_cap_ff_per_um: float
    wire_cap_ff_per_um: float
    logic_depth: int
    corner_vth_sigma: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0.0:
            raise ValueError("feature_nm must be positive")
        if self.vdd_nominal <= 0.0:
            raise ValueError("vdd_nominal must be positive")
        if self.logic_depth <= 0:
            raise ValueError("logic_depth must be positive")

    def at_corner(self, corner: Corner) -> "TechnologyNode":
        """Return a copy of this node shifted to a global PVT corner."""
        shift = _CORNER_SHIFT[corner] * self.corner_vth_sigma
        return replace(
            self,
            name=f"{self.name}/{corner.value}",
            nmos=self.nmos.with_vth_shift(shift),
            pmos=self.pmos.with_vth_shift(shift),
        )

    def area_scale_from(self, other: "TechnologyNode") -> float:
        """Return the area ratio when porting a layout from ``other``.

        Table 1 scales the 65 nm cell-based memory to 40 nm with the
        classic (feature ratio)^2 rule; this helper implements it.
        """
        return (self.feature_nm / other.feature_nm) ** 2


NODE_65NM_LP = TechnologyNode(
    name="65nm-LP",
    feature_nm=65.0,
    nmos=DeviceParameters(
        vth=0.50,
        subthreshold_slope_mv=95.0,
        i_spec_ua_per_um=4.0,
        dibl_mv_per_v=110.0,
        avt_mv_um=4.5,
    ),
    pmos=DeviceParameters(
        vth=0.50,
        subthreshold_slope_mv=100.0,
        i_spec_ua_per_um=2.2,
        dibl_mv_per_v=120.0,
        avt_mv_um=5.0,
    ),
    vdd_nominal=1.2,
    gate_cap_ff_per_um=1.0,
    wire_cap_ff_per_um=0.21,
    logic_depth=36,
    corner_vth_sigma=0.045,
)

NODE_40NM_LP = TechnologyNode(
    name="40nm-LP",
    feature_nm=40.0,
    nmos=DeviceParameters(
        vth=0.47,
        subthreshold_slope_mv=90.0,
        i_spec_ua_per_um=5.5,
        dibl_mv_per_v=140.0,
        avt_mv_um=3.5,
    ),
    pmos=DeviceParameters(
        vth=0.47,
        subthreshold_slope_mv=95.0,
        i_spec_ua_per_um=3.0,
        dibl_mv_per_v=150.0,
        avt_mv_um=4.0,
    ),
    vdd_nominal=1.1,
    gate_cap_ff_per_um=0.85,
    wire_cap_ff_per_um=0.19,
    logic_depth=36,
    corner_vth_sigma=0.04,
)

NODE_14NM_FINFET = TechnologyNode(
    name="14nm-finFET",
    feature_nm=14.0,
    nmos=DeviceParameters(
        vth=0.38,
        subthreshold_slope_mv=68.0,
        i_spec_ua_per_um=11.0,
        dibl_mv_per_v=40.0,
        avt_mv_um=1.3,
    ),
    pmos=DeviceParameters(
        vth=0.38,
        subthreshold_slope_mv=70.0,
        i_spec_ua_per_um=10.0,
        dibl_mv_per_v=45.0,
        avt_mv_um=1.4,
    ),
    vdd_nominal=0.8,
    gate_cap_ff_per_um=0.55,
    wire_cap_ff_per_um=0.15,
    logic_depth=36,
    corner_vth_sigma=0.03,
)

NODE_10NM_MG = TechnologyNode(
    name="10nm-MG",
    feature_nm=10.0,
    nmos=DeviceParameters(
        vth=0.36,
        subthreshold_slope_mv=64.0,
        i_spec_ua_per_um=13.0,
        dibl_mv_per_v=30.0,
        avt_mv_um=1.0,
    ),
    pmos=DeviceParameters(
        vth=0.36,
        subthreshold_slope_mv=66.0,
        i_spec_ua_per_um=12.0,
        dibl_mv_per_v=35.0,
        avt_mv_um=1.1,
    ),
    vdd_nominal=0.7,
    gate_cap_ff_per_um=0.42,
    wire_cap_ff_per_um=0.11,
    logic_depth=36,
    corner_vth_sigma=0.025,
)

_NODES = {
    node.name: node
    for node in (NODE_65NM_LP, NODE_40NM_LP, NODE_14NM_FINFET, NODE_10NM_MG)
}


def list_nodes() -> list[str]:
    """Return the names of all built-in technology nodes."""
    return sorted(_NODES)


def get_node(name: str) -> TechnologyNode:
    """Look up a built-in node by name.

    Raises ``KeyError`` with the list of known names on a miss.
    """
    try:
        return _NODES[name]
    except KeyError:
        raise KeyError(
            f"unknown technology node {name!r}; known: {list_nodes()}"
        ) from None
