"""Application workloads.

The paper's evaluation runs a 1K-point FFT, "but the analysis is
applicable to other streaming applications as well".  This subpackage
provides:

* :mod:`repro.workloads.fft` — a fixed-point radix-2 FFT: a bit-exact
  Python reference model and an NTC32 assembly generator whose phases
  (bit-reversal plus one phase per butterfly stage) are the units
  OCEAN checkpoints between.
* :mod:`repro.workloads.streaming` — generic streaming-phase
  abstractions used by the OCEAN controller.
"""

from repro.workloads.fft import (
    FftProgram,
    build_fft_program,
    fixed_point_fft_reference,
    generate_input,
    pack_complex,
    unpack_complex,
)
from repro.workloads.fir import (
    FirProgram,
    build_fir_program,
    fir_reference,
    generate_signal,
    lowpass_taps,
)
from repro.workloads.streaming import Phase, StreamingWorkload

__all__ = [
    "FftProgram",
    "build_fft_program",
    "fixed_point_fft_reference",
    "generate_input",
    "pack_complex",
    "unpack_complex",
    "FirProgram",
    "build_fir_program",
    "fir_reference",
    "generate_signal",
    "lowpass_taps",
    "Phase",
    "StreamingWorkload",
]
