"""Fixed-point radix-2 FFT: reference model and NTC32 code generator.

The paper's benchmark is a 1K-point FFT on the ARM9 platform.  Here the
FFT is generated as real NTC32 assembly and executed instruction by
instruction on the simulator, so memory faults corrupt *actual* data
and the mitigation schemes fight *actual* corruption.

Data format: one 32-bit scratchpad word per complex sample, Q15 real
part in the high half-word, Q15 imaginary part in the low half-word.
Each butterfly stage scales by 1/2 (the standard guard against
fixed-point overflow), so the program computes FFT(x) / n.

Scratchpad layout for an n-point transform::

    [0          .. n-1      ]   packed complex data (in place)
    [n          .. n + n/2-1]   packed twiddle factors w_k = e^(-2*pi*i*k/n)

Phases (YIELD-delimited, for OCEAN): bit-reversal, then one phase per
butterfly stage — log2(n) + 1 phases total.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.soc.assembler import assemble
from repro.workloads.streaming import Phase, StreamingWorkload

_Q15_ONE = 32767
_ROUND = 1 << 14  # Q15 rounding constant for the >> 15 product shift


def _to_q15(value: float) -> int:
    """Quantise a float in [-1, 1) to Q15 with saturation."""
    scaled = int(round(value * _Q15_ONE))
    return max(-32768, min(32767, scaled))


def pack_complex(re: int, im: int) -> int:
    """Pack two signed Q15 values into one 32-bit word (re high)."""
    for name, val in (("re", re), ("im", im)):
        if not -32768 <= val <= 32767:
            raise ValueError(f"{name}={val} out of Q15 range")
    return ((re & 0xFFFF) << 16) | (im & 0xFFFF)


def unpack_complex(word: int) -> tuple[int, int]:
    """Inverse of :func:`pack_complex`."""
    if word < 0 or word >> 32:
        raise ValueError(f"word must be 32-bit, got {word:#x}")
    re = (word >> 16) & 0xFFFF
    im = word & 0xFFFF
    if re & 0x8000:
        re -= 1 << 16
    if im & 0x8000:
        im -= 1 << 16
    return re, im


def twiddle_words(n: int) -> list[int]:
    """Return the packed Q15 twiddle table w_k = e^(-2*pi*i*k/n)."""
    words = []
    for k in range(n // 2):
        angle = -2.0 * math.pi * k / n
        words.append(
            pack_complex(_to_q15(math.cos(angle)), _to_q15(math.sin(angle)))
        )
    return words


# ----------------------------------------------------------------------
# Bit-exact Python reference of what the assembly computes
# ----------------------------------------------------------------------
def _butterfly(u: int, v: int, w: int) -> tuple[int, int]:
    """One radix-2 butterfly on packed words, bit-exact vs the ISA."""
    u_re, u_im = unpack_complex(u)
    v_re, v_im = unpack_complex(v)
    w_re, w_im = unpack_complex(w)
    t_re = (v_re * w_re - v_im * w_im + _ROUND) >> 15
    t_im = (v_re * w_im + v_im * w_re + _ROUND) >> 15
    out1 = pack_complex((u_re + t_re) >> 1, (u_im + t_im) >> 1)
    out2 = pack_complex((u_re - t_re) >> 1, (u_im - t_im) >> 1)
    return out1, out2


def fixed_point_fft_reference(data: list[int]) -> list[int]:
    """Run the fixed-point FFT on packed words, bit-exactly.

    This is the golden model the simulator's output must equal word for
    word in a fault-free run (and after successful mitigation).
    """
    n = len(data)
    if n < 2 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 2, got {n}")
    log2n = n.bit_length() - 1
    twiddles = twiddle_words(n)
    out = list(data)
    # Bit-reversal permutation.
    for i in range(n):
        j = int(format(i, f"0{log2n}b")[::-1], 2)
        if j > i:
            out[i], out[j] = out[j], out[i]
    # log2(n) butterfly stages.
    length = 2
    while length <= n:
        half = length // 2
        step = n // length
        for base in range(0, n, length):
            for k in range(half):
                w = twiddles[k * step]
                i1, i2 = base + k, base + k + half
                out[i1], out[i2] = _butterfly(out[i1], out[i2], w)
        length *= 2
    return out


def float_fft_of_packed(data: list[int]) -> np.ndarray:
    """Return numpy's FFT of the packed input, scaled like the
    fixed-point pipeline (divided by n), for accuracy checks."""
    n = len(data)
    samples = np.array(
        [complex(re, im) / _Q15_ONE for re, im in map(unpack_complex, data)]
    )
    return np.fft.fft(samples) / n


# ----------------------------------------------------------------------
# Input stimulus
# ----------------------------------------------------------------------
def generate_input(
    n: int, kind: str = "tones", seed: int = 7, amplitude: float = 0.45
) -> list[int]:
    """Generate packed test input.

    ``kind``: "tones" (two complex exponentials, the classic FFT
    smoke stimulus), "noise" (uniform complex noise), or "impulse".
    """
    if not 0.0 < amplitude <= 0.5:
        raise ValueError("amplitude must be in (0, 0.5] to avoid overflow")
    rng = np.random.default_rng(seed)
    words = []
    if kind == "tones":
        bins = (3, n // 5)
        for i in range(n):
            re = sum(
                0.5 * amplitude * math.cos(2 * math.pi * b * i / n)
                for b in bins
            )
            im = sum(
                0.5 * amplitude * math.sin(2 * math.pi * b * i / n)
                for b in bins
            )
            words.append(pack_complex(_to_q15(re), _to_q15(im)))
    elif kind == "noise":
        for _ in range(n):
            words.append(
                pack_complex(
                    _to_q15(float(rng.uniform(-amplitude, amplitude))),
                    _to_q15(float(rng.uniform(-amplitude, amplitude))),
                )
            )
    elif kind == "impulse":
        words = [pack_complex(0, 0)] * n
        words[0] = pack_complex(_to_q15(amplitude), 0)
    else:
        raise ValueError(f"unknown input kind {kind!r}")
    return words


# ----------------------------------------------------------------------
# NTC32 code generation
# ----------------------------------------------------------------------
def _bitrev_source(n: int, log2n: int) -> str:
    return f"""
; ---- phase 0: bit-reversal permutation ----
        li   r2, 0             ; i
bitrev_loop:
        li   r3, 0             ; j (reversed index)
        mv   r4, r2
        li   r5, {log2n}
bitrev_inner:
        slli r3, r3, 1
        andi r6, r4, 1
        or   r3, r3, r6
        srai r4, r4, 1
        addi r5, r5, -1
        bne  r5, r0, bitrev_inner
        bge  r2, r3, bitrev_noswap
        lw   r6, r2, 0
        lw   r7, r3, 0
        sw   r7, r2, 0
        sw   r6, r3, 0
bitrev_noswap:
        addi r2, r2, 1
        blt  r2, r1, bitrev_loop
        yield
"""


def _stage_source(s: int, length: int, half: int, log2_step: int) -> str:
    return f"""
; ---- phase {s}: butterfly stage len={length} ----
        li   r2, 0             ; base
stage{s}_base:
        li   r3, 0             ; k
stage{s}_k:
        slli r4, r3, {log2_step}
        add  r4, r4, r1        ; twiddle address = n + k*step
        lw   r5, r4, 0         ; w
        add  r6, r2, r3        ; i1
        lw   r7, r6, 0         ; u
        addi r8, r6, {half}    ; i2
        lw   r9, r8, 0         ; v
        srai r10, r5, 16       ; w_re
        slli r11, r5, 16
        srai r11, r11, 16      ; w_im
        srai r12, r9, 16       ; v_re
        slli r13, r9, 16
        srai r13, r13, 16      ; v_im
        mul  r5, r12, r10      ; v_re*w_re
        mul  r14, r13, r11     ; v_im*w_im
        sub  r5, r5, r14
        add  r5, r5, r15
        srai r5, r5, 15        ; t_re
        mul  r9, r12, r11      ; v_re*w_im
        mul  r14, r13, r10     ; v_im*w_re
        add  r9, r9, r14
        add  r9, r9, r15
        srai r9, r9, 15        ; t_im
        srai r10, r7, 16       ; u_re
        slli r11, r7, 16
        srai r11, r11, 16      ; u_im
        add  r12, r10, r5
        srai r12, r12, 1       ; (u_re + t_re) >> 1
        add  r13, r11, r9
        srai r13, r13, 1
        slli r14, r12, 16
        slli r13, r13, 16
        srli r13, r13, 16
        or   r14, r14, r13
        sw   r14, r6, 0        ; x[i1]
        sub  r12, r10, r5
        srai r12, r12, 1
        sub  r13, r11, r9
        srai r13, r13, 1
        slli r14, r12, 16
        slli r13, r13, 16
        srli r13, r13, 16
        or   r14, r14, r13
        sw   r14, r8, 0        ; x[i2]
        addi r3, r3, 1
        slti r14, r3, {half}
        bne  r14, r0, stage{s}_k
        addi r2, r2, {length}
        blt  r2, r1, stage{s}_base
        yield
"""


@dataclass(frozen=True)
class FftProgram:
    """A generated FFT ready to run on the platform."""

    n: int
    workload: StreamingWorkload
    source: str

    @property
    def data_words(self) -> tuple[int, ...]:
        return self.workload.data_words

    def expected_output(self, input_words: list[int]) -> list[int]:
        """Golden fixed-point result for the given input."""
        return fixed_point_fft_reference(input_words)


def build_fft_program(
    n: int = 1024, input_words: list[int] | None = None
) -> FftProgram:
    """Generate, assemble and package an n-point FFT workload.

    ``input_words`` defaults to the two-tone stimulus.  The returned
    workload's scratchpad image contains input data and the twiddle
    table; phases cover bit-reversal plus every butterfly stage.
    """
    if n < 4 or n & (n - 1):
        raise ValueError(f"n must be a power of two >= 4, got {n}")
    log2n = n.bit_length() - 1
    if input_words is None:
        input_words = generate_input(n)
    if len(input_words) != n:
        raise ValueError(
            f"input has {len(input_words)} words, expected {n}"
        )

    pieces = [
        f"; NTC32 {n}-point fixed-point radix-2 DIT FFT",
        "        li   r1, %d            ; n (also twiddle base)" % n,
        "        lui  r15, 4            ; 0x4000 Q15 rounding constant",
        _bitrev_source(n, log2n),
    ]
    stage = 1
    length = 2
    while length <= n:
        half = length // 2
        step = n // length
        pieces.append(
            _stage_source(stage, length, half, step.bit_length() - 1)
        )
        stage += 1
        length *= 2
    pieces.append("        halt")
    source = "\n".join(pieces)
    program = assemble(source)

    phases = [Phase(index=0, name="bit-reversal", chunk_base=0, chunk_words=n)]
    for s in range(1, log2n + 1):
        phases.append(
            Phase(
                index=s,
                name=f"stage {s} (len {2 ** s})",
                chunk_base=0,
                chunk_words=n,
            )
        )
    workload = StreamingWorkload(
        name=f"fft-{n}",
        program_words=tuple(program),
        phases=tuple(phases),
        data_words=tuple(list(input_words) + twiddle_words(n)),
        data_base=0,
        result_base=0,
        result_words=n,
    )
    return FftProgram(n=n, workload=workload, source=source)
