"""Block FIR filter: a second streaming workload.

Section V closes with "the analysis is applicable to other streaming
applications as well"; this module backs that sentence with a second
real workload: a Q15 fixed-point FIR filter whose input stream is
processed in blocks — each block is one OCEAN phase producing one
output chunk, exactly the Figure 7 structure.

Scratchpad layout for N samples and T taps::

    [0        .. N-1       ]   input samples, signed Q15 (32-bit words)
    [N        .. N+T-1     ]   coefficients, signed Q15
    [N+T      .. N+T+N-1   ]   output samples, signed Q15

The generated NTC32 program computes ``y[i] = (sum_t x[i-t] * h[t] +
0x4000) >> 15`` with zero boundary handling, matching the bit-exact
Python reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.soc.assembler import assemble
from repro.workloads.streaming import Phase, StreamingWorkload

_MASK32 = 0xFFFFFFFF
_ROUND = 1 << 14


def _to_q15(value: float) -> int:
    scaled = int(round(value * 32767.0))
    return max(-32768, min(32767, scaled))


def _signed32(word: int) -> int:
    return word - (1 << 32) if word & 0x80000000 else word


def lowpass_taps(n_taps: int = 16, cutoff: float = 0.2) -> list[int]:
    """Return Q15 taps of a Hamming-windowed low-pass FIR.

    Normalised so the absolute tap sum stays below 1.0, which bounds
    the 32-bit accumulator of the generated code.
    """
    if n_taps < 2:
        raise ValueError(f"need at least 2 taps, got {n_taps}")
    if not 0.0 < cutoff < 0.5:
        raise ValueError(f"cutoff must be in (0, 0.5), got {cutoff}")
    mid = (n_taps - 1) / 2.0
    taps = []
    for i in range(n_taps):
        x = i - mid
        ideal = (
            2.0 * cutoff if x == 0
            else math.sin(2.0 * math.pi * cutoff * x) / (math.pi * x)
        )
        window = 0.54 - 0.46 * math.cos(2.0 * math.pi * i / (n_taps - 1))
        taps.append(ideal * window)
    norm = sum(abs(t) for t in taps)
    return [_to_q15(0.98 * t / norm) for t in taps]


def generate_signal(
    n: int, kind: str = "chirp", seed: int = 11, amplitude: float = 0.4
) -> list[int]:
    """Generate a Q15 test signal as sign-extended 32-bit words."""
    if not 0.0 < amplitude <= 0.5:
        raise ValueError("amplitude must be in (0, 0.5]")
    rng = np.random.default_rng(seed)
    samples = []
    for i in range(n):
        if kind == "chirp":
            phase = math.pi * (i * i) / (2.0 * n)
            value = amplitude * math.sin(phase)
        elif kind == "noise":
            value = float(rng.uniform(-amplitude, amplitude))
        elif kind == "step":
            value = amplitude if i >= n // 4 else 0.0
        else:
            raise ValueError(f"unknown signal kind {kind!r}")
        samples.append(_to_q15(value) & _MASK32)
    return samples


def fir_reference(
    signal: list[int], taps: list[int]
) -> list[int]:
    """Bit-exact model of the generated FIR code."""
    out = []
    for i in range(len(signal)):
        acc = 0
        for t, tap in enumerate(taps):
            idx = i - t
            if idx >= 0:
                acc += _signed32(signal[idx]) * tap
        out.append(((acc + _ROUND) >> 15) & _MASK32)
    return out


def _block_source(
    block: int, lo: int, hi: int, n_taps: int, h_base: int, y_base: int
) -> str:
    return f"""
; ---- phase {block}: output samples {lo}..{hi - 1} ----
        li   r1, {lo}
blk{block}_i:
        li   r3, 0             ; accumulator
        li   r2, 0             ; tap index
blk{block}_t:
        sub  r4, r1, r2        ; sample index i - t
        blt  r4, r0, blk{block}_skip
        lw   r5, r4, 0         ; x[i - t]
        lw   r6, r2, {h_base}  ; h[t]
        mul  r7, r5, r6
        add  r3, r3, r7
blk{block}_skip:
        addi r2, r2, 1
        slti r8, r2, {n_taps}
        bne  r8, r0, blk{block}_t
        add  r3, r3, r15       ; Q15 rounding
        srai r3, r3, 15
        sw   r3, r1, {y_base}
        addi r1, r1, 1
        slti r8, r1, {hi}
        bne  r8, r0, blk{block}_i
        yield
"""


@dataclass(frozen=True)
class FirProgram:
    """A generated FIR workload ready for the platform."""

    n: int
    n_taps: int
    workload: StreamingWorkload
    source: str
    taps: tuple[int, ...]

    def expected_output(self, signal: list[int]) -> list[int]:
        """Golden fixed-point result for the given input signal."""
        return fir_reference(signal, list(self.taps))


def build_fir_program(
    n: int = 256,
    n_taps: int = 16,
    blocks: int = 8,
    signal: list[int] | None = None,
) -> FirProgram:
    """Generate, assemble and package a block FIR workload."""
    if n < blocks or n % blocks:
        raise ValueError(f"blocks {blocks} must divide n {n}")
    if signal is None:
        signal = generate_signal(n)
    if len(signal) != n:
        raise ValueError(f"signal has {len(signal)} samples, expected {n}")
    taps = lowpass_taps(n_taps)
    h_base = n
    y_base = n + n_taps

    pieces = [
        f"; NTC32 block FIR: {n} samples, {n_taps} taps, {blocks} blocks",
        "        lui  r15, 4            ; 0x4000 Q15 rounding constant",
    ]
    block_len = n // blocks
    phases = []
    for block in range(blocks):
        lo, hi = block * block_len, (block + 1) * block_len
        pieces.append(
            _block_source(block, lo, hi, n_taps, h_base, y_base)
        )
        phases.append(
            Phase(
                index=block,
                name=f"block {block} ({lo}..{hi - 1})",
                chunk_base=0,
                chunk_words=y_base + n,
            )
        )
    pieces.append("        halt")
    source = "\n".join(pieces)
    program = assemble(source)

    data = list(signal) + [tap & _MASK32 for tap in taps] + [0] * n
    workload = StreamingWorkload(
        name=f"fir-{n}x{n_taps}",
        program_words=tuple(program),
        phases=tuple(phases),
        data_words=tuple(data),
        data_base=0,
        result_base=y_base,
        result_words=n,
    )
    return FirProgram(
        n=n,
        n_taps=n_taps,
        workload=workload,
        source=source,
        taps=tuple(taps),
    )
