"""Streaming-phase abstractions.

OCEAN "splits a computation task into a set of equivalent phases.
Each phase generates a chunk of data that is required for the
subsequent phases to be error-free" (Section V, Figure 7).  A
:class:`StreamingWorkload` describes that phase structure for any
program whose phase boundaries are marked with ``YIELD`` instructions;
the FFT generator produces one, and the OCEAN controller consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Phase:
    """One checkpointable unit of a streaming computation.

    Attributes
    ----------
    index:
        Phase number, in execution order.
    name:
        Human-readable label ("bit-reversal", "stage 3", ...).
    chunk_base / chunk_words:
        The scratchpad region holding the phase's output chunk — the
        data the next phase depends on, and therefore exactly what the
        checkpoint must capture.
    """

    index: int
    name: str
    chunk_base: int
    chunk_words: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("index must be non-negative")
        if self.chunk_words <= 0:
            raise ValueError("chunk_words must be positive")
        if self.chunk_base < 0:
            raise ValueError("chunk_base must be non-negative")


@dataclass(frozen=True)
class StreamingWorkload:
    """A program with YIELD-delimited phases.

    Attributes
    ----------
    name:
        Workload label.
    program_words:
        Assembled NTC32 binary.
    phases:
        Phase descriptors, one per YIELD (the final phase ends at the
        HALT).
    data_words / data_base:
        Initial scratchpad image.
    result_base / result_words:
        Where the final output lives in the scratchpad.
    """

    name: str
    program_words: tuple[int, ...]
    phases: tuple[Phase, ...]
    data_words: tuple[int, ...]
    data_base: int
    result_base: int
    result_words: int

    def __post_init__(self) -> None:
        if not self.program_words:
            raise ValueError("program must not be empty")
        if not self.phases:
            raise ValueError("need at least one phase")
        indices = [phase.index for phase in self.phases]
        if indices != list(range(len(self.phases))):
            raise ValueError("phase indices must be 0..n-1 in order")

    @property
    def n_phases(self) -> int:
        return len(self.phases)
