"""Bad: entropy-seeded generator outside tests."""
import numpy as np


def sample() -> float:
    rng = np.random.default_rng()
    return float(rng.random())
