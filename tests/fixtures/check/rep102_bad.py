"""Bad: the lockstep engine constructs RNG streams of its own.

Every one of these would desynchronise lanes from their scalar
oracles — even the seeded ones, because scalar runs never draw from
these streams at all.
"""

import random

import numpy as np


class LaneBlock:
    def __init__(self, platforms, seed=1234):
        # Seeded, but still a block-owned stream: REP102.
        self._rng = np.random.default_rng(seed)
        self._legacy = np.random.RandomState(seed)
        self._py = random.Random(seed)

    def _shuffle_lanes(self, order):
        self._rng.shuffle(order)
        return order

    def _fork_streams(self, n):
        # Forking per-lane streams inside the engine couples lanes the
        # campaign layer promised were independent.
        root = np.random.SeedSequence(42)
        return root.spawn(n)
