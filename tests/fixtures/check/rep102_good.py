"""Good: the lockstep engine owns no randomness.

All stream interaction goes through the per-lane fault models —
budget reads (``clean_run_length``) and bulk settlement
(``consume_clean``) — so each lane's generator advances exactly as
its scalar oracle would.
"""

_UNBOUNDED = 1 << 62


class LaneBlock:
    def __init__(self, platforms):
        self._faults = [p.im.faults for p in platforms]
        self._left = [-1] * len(platforms)

    def _draw_budget(self, lane):
        faults = self._faults[lane]
        if faults is None:
            return _UNBOUNDED
        # The lane's own stream, read exactly when a fetch follows.
        return faults.clean_run_length()

    def _settle(self, lane, consumed):
        faults = self._faults[lane]
        if faults is not None and consumed:
            faults.consume_clean(consumed)
