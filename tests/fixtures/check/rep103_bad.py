"""Bad: wall clock, entropy and host identity leak into a cache key."""
import os
import socket
import time


def fingerprint_payload(payload: dict) -> dict:
    payload = dict(payload)
    payload["stamp"] = time.time()
    payload["host"] = socket.gethostname()
    payload["pid"] = os.getpid()
    payload["nonce"] = os.urandom(8).hex()
    return payload
