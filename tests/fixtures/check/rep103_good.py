"""Good: the fingerprint is a pure function of campaign provenance."""
import hashlib
import json


def fingerprint_payload(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
