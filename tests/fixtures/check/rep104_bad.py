"""Bad: the key path reaches a wall-clock read two hops away."""
import hashlib
import time


def _stamp() -> float:
    return time.time()


def _canonical(spec: dict) -> str:
    parts = sorted(f"{k}={v}" for k, v in spec.items())
    parts.append(f"at={_stamp()}")
    return "|".join(parts)


def fingerprint_spec(spec: dict) -> str:
    return hashlib.sha256(_canonical(spec).encode()).hexdigest()
