"""Good: every helper on the key path derives from provenance only."""
import hashlib


def _canonical(spec: dict) -> str:
    return "|".join(sorted(f"{k}={v}" for k, v in spec.items()))


def fingerprint_spec(spec: dict) -> str:
    return hashlib.sha256(_canonical(spec).encode()).hexdigest()
