"""Bad: public vdd entry point with no validation anywhere."""


def read_energy(vdd: float) -> float:
    return 1e-15 * vdd * vdd
