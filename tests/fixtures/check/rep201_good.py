"""Good: direct validation, plus one level of delegation."""
from repro.core.errors import validate_vdd


def read_energy(vdd: float) -> float:
    vdd = validate_vdd(vdd, "read_energy")
    return 1e-15 * vdd * vdd


def total_energy(vdd: float, accesses: int) -> float:
    return accesses * read_energy(vdd)
