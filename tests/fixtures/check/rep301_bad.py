"""Bad: wall clock and set iteration on the replay path."""
import time


def stamp() -> float:
    return time.time()


def visit(items: list) -> list:
    return [x for x in set(items)]
