"""Good: monotonic scheduling clock, ordered iteration."""
import time


def stamp() -> float:
    return time.monotonic()


def visit(items: list) -> list:
    return sorted(set(items))
