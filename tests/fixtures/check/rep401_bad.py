"""Bad: obs counter name not present in the registry."""
from repro.obs import active_metrics


def publish() -> None:
    active_metrics().counter("totally.unregistered.name").inc()


def publish_profile() -> None:
    active_metrics().counter("profile.bogus_tally").inc()
