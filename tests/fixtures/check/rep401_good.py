"""Good: registry constant, registered literal, and a factory."""
from repro.obs import active_metrics, names


def publish(codec: str) -> None:
    active_metrics().counter(names.FAULTS_INJECTED_BITS).inc()
    active_metrics().counter("faults.injected_events").inc()
    active_metrics().counter(names.ecc_metric(codec, "clean")).inc()


def publish_profile() -> None:
    active_metrics().histogram(names.PROFILE_LANE_OCCUPANCY).add("4-7")
    active_metrics().counter("profile.fast_path.instructions").inc()


def publish_serve() -> None:
    active_metrics().counter(names.SERVE_JOBS_RECOVERED).inc()
    active_metrics().counter("serve.deadline_kills").inc()
