"""Bad: engine module constructs and installs its own instruments."""
from repro.obs import MetricsRegistry, enable_metrics
from repro.obs.profile import EngineProfiler, enable_profiling


def run_profiled() -> None:
    registry = MetricsRegistry()
    enable_metrics(registry)
    enable_profiling(EngineProfiler())
