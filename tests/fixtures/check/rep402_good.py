"""Good: ambient instruments via the no-op-default accessors."""
from repro.obs import active_metrics, names
from repro.obs.profile import active_profiler


def settle(reads: int, writes: int) -> None:
    profiler = active_profiler()
    if profiler.enabled:
        profiler.record_settlement(reads, writes)
    active_metrics().counter(names.PROFILE_SETTLEMENTS).inc()
