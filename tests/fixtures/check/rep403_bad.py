"""Bad: one pinned name has no instrument behind it."""

METRIC_SERVE_QUEUE_DEPTH = "serve.queue_depth"
METRIC_STORE_GHOST_ROWS = "store.ghost_rows"

SERVE_METRIC_FIELDS = (METRIC_SERVE_QUEUE_DEPTH,)
