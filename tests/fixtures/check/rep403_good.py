"""Good: every pinned name is referenced by a factory table."""

METRIC_SERVE_QUEUE_DEPTH = "serve.queue_depth"
METRIC_STORE_GHOST_ROWS = "store.ghost_rows"

SERVE_METRIC_FIELDS = (
    METRIC_SERVE_QUEUE_DEPTH,
    METRIC_STORE_GHOST_ROWS,
)
