"""Bad: a lambda handed to the resilient executor."""
from repro.resilience import ResilientExecutor


def launch() -> ResilientExecutor:
    return ResilientExecutor(lambda task: task * 2)
