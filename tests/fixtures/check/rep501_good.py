"""Good: a module-level task function, picklable by reference."""
from repro.resilience import ResilientExecutor


def work(task: int) -> int:
    return task * 2


def launch() -> ResilientExecutor:
    return ResilientExecutor(work)
