"""Bad: the submitted worker mutates module-level state."""
from concurrent.futures import ProcessPoolExecutor

RESULTS: list = []


def work(task: int) -> int:
    RESULTS.append(task)
    return task


def launch(tasks: list) -> list:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, task) for task in tasks]
    return [future.result() for future in futures]
