"""Good: the worker is pure; results travel back as return values."""
from concurrent.futures import ProcessPoolExecutor


def work(task: int) -> int:
    return task * 2


def launch(tasks: list) -> list:
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, task) for task in tasks]
    return [future.result() for future in futures]
