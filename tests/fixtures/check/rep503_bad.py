"""Bad: the watchdog thread sweeps the job table without the lock."""
import threading


class JobServer:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs = {}
        self._watchdog = threading.Thread(target=self._watch)

    def submit(self, job_id: str, job) -> None:
        with self._lock:
            self._jobs[job_id] = job

    def _watch(self) -> None:
        for job_id in list(self._jobs):
            if self._jobs[job_id].expired():
                self._jobs.pop(job_id)
