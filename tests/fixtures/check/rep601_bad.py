"""Bad: hand-rolled NDJSON framing outside the serializer modules."""
import json


def write_records(records: list, fh) -> None:
    for record in records:
        fh.write(json.dumps(record, separators=(",", ":")) + "\n")
