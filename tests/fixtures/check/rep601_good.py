"""Good: pretty one-shot dumps stay legal everywhere."""
import json


def render(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)
