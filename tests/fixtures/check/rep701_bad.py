"""Bad: a silent swallow in resilience code."""


def run_all(tasks: list) -> list:
    done = []
    for task in tasks:
        try:
            done.append(task())
        except Exception:
            pass
    return done
