"""Good: every failure is routed to an observer."""


def run_all(tasks: list, on_error) -> list:
    done = []
    for task in tasks:
        try:
            done.append(task())
        except Exception as exc:
            on_error(exc)
    return done
