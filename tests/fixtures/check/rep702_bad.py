"""Bad: a typed cancellation is dropped before anyone records it."""


class JobCancelledError(Exception):
    pass


def run(job) -> None:
    try:
        job.execute()
    except JobCancelledError:
        pass
