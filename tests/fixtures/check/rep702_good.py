"""Good: the typed cancellation is journalled before moving on."""


class JobCancelledError(Exception):
    pass


def run(job, journal) -> None:
    try:
        job.execute()
    except JobCancelledError as exc:
        journal.record("cancelled", job_id=job.id, error=exc)
