"""Unit tests for the analysis layer (tables, sweeps, experiments)."""

import pytest

from repro.analysis import format_table, voltage_sweep
from repro.analysis.experiments import (
    FREQ_LOW,
    fig3_retention_maps,
    fig4_retention_ber,
    headline_claims,
    platform_frequency_floor,
    platform_max_frequency,
    table1_comparison,
    table2_minimum_voltages,
)
from repro.analysis.sweeps import find_minimum


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            ("name", "value"), [("a", 1.23456), ("bbbb", 7)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "1.235" in text  # four significant digits

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(("a", "b"), [("only-one",)])

    def test_wide_cells_stretch_columns(self):
        text = format_table(("h",), [("wider-than-header",)])
        header, rule, row = text.splitlines()
        assert len(rule) == len("wider-than-header")


class TestVoltageSweep:
    def test_grid_and_values(self):
        grid, values = voltage_sweep(lambda v: v * v, 0.2, 1.0, 5)
        assert len(grid) == len(values) == 5
        assert values[0] == pytest.approx(0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            voltage_sweep(lambda v: v, 0.2, 1.0, 1)
        with pytest.raises(ValueError):
            voltage_sweep(lambda v: v, 1.0, 0.2, 5)

    def test_find_minimum(self):
        grid, values = voltage_sweep(lambda v: (v - 0.6) ** 2, 0.2, 1.0, 41)
        v, val = find_minimum(grid, values)
        assert v == pytest.approx(0.6, abs=0.02)
        with pytest.raises(ValueError):
            find_minimum([], [])


class TestPlatformTiming:
    def test_calibration_anchor(self):
        """The paper's sentence: 290 kHz at 0.33 V, exactly."""
        assert platform_max_frequency(0.33) == pytest.approx(FREQ_LOW)

    def test_floor_round_trip(self):
        for frequency in (290e3, 1.96e6, 11e6):
            floor = platform_frequency_floor(frequency)
            assert platform_max_frequency(floor) >= frequency * 0.999

    def test_floor_validation(self):
        with pytest.raises(ValueError):
            platform_frequency_floor(0.0)
        with pytest.raises(ValueError):
            platform_frequency_floor(1e15)


class TestExperimentShapes:
    """Cheap structural checks; the anchors live in benchmarks/."""

    def test_table1_has_four_designs(self):
        rows = table1_comparison()
        assert len(rows) == 4
        assert all("paper" in r for r in rows)

    def test_table2_has_nine_rows(self):
        rows = table2_minimum_voltages()
        assert len(rows) == 9
        assert {r["scheme"] for r in rows} == {"none", "SECDED", "OCEAN"}

    def test_fig3_maps_shapes(self):
        maps = fig3_retention_maps(words=32, bits=16)
        assert set(maps) == {"commercial", "cell-based"}
        assert maps["commercial"].shape == (32, 16)

    def test_fig4_series(self):
        series = fig4_retention_ber(n_dies=3, words=64, bits=16)
        assert len(series) == 2
        for s in series:
            assert s.voltages.shape == s.measured_ber.shape
            assert s.fitted_v_sigma > 0

    def test_headline_claims_consistent(self):
        claims = headline_claims(fft_points=64)
        assert claims.power_ratio_vs_none > claims.power_ratio_vs_ecc > 1.0
        assert claims.dynamic_power_ratio_beyond_limit == pytest.approx(
            3.3, abs=0.3
        )
