"""BatchCampaign: grid evaluation, RNG contracts and process fan-out."""

import numpy as np
import pytest

from repro.analysis.batch import AccessBerGrid, BatchCampaign
from repro.analysis.campaign import run_campaign
from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_CELL_BASED_40NM_TYPICAL,
    ACCESS_COMMERCIAL_40NM,
)
from repro.core.retention import RETENTION_COMMERCIAL_40NM
from repro.memdev.die import DiePopulation
from repro.mitigation import SecdedRunner
from repro.workloads.fft import build_fft_program

VOLTAGES = np.linspace(0.30, 0.50, 7)


class TestAccessBerGrid:
    def test_vectorized_grid_is_bit_exact_vs_scalar(self):
        campaign = BatchCampaign(seed=5)
        fast = campaign.access_ber_grid(ACCESS_CELL_BASED_40NM, VOLTAGES, 3000)
        slow = campaign.access_ber_grid_scalar(
            ACCESS_CELL_BASED_40NM, VOLTAGES, 3000
        )
        np.testing.assert_array_equal(fast.errors, slow.errors)

    def test_grid_points_are_order_independent(self):
        """Each point has its own child stream, so a reordered grid
        returns reordered-but-identical counts."""
        campaign = BatchCampaign(seed=6)
        forward = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTAGES, 2000
        )
        # Same campaign, same voltages — deterministic replay.
        again = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTAGES, 2000
        )
        np.testing.assert_array_equal(forward.errors, again.errors)

    def test_rates_follow_the_model(self):
        campaign = BatchCampaign(seed=7)
        grid = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTAGES, 50_000
        )
        assert isinstance(grid, AccessBerGrid)
        # Low voltage must show clearly more errors than high voltage.
        assert grid.errors[0] > 10 * max(int(grid.errors[-1]), 1)
        assert grid.bits_per_point == 50_000 * 32

    def test_unseeded_campaign_gets_a_concrete_seed(self):
        campaign = BatchCampaign()
        assert isinstance(campaign.seed, int)
        replay = BatchCampaign(seed=campaign.seed)
        a = campaign.access_ber_grid(ACCESS_CELL_BASED_40NM, VOLTAGES, 500)
        b = replay.access_ber_grid(ACCESS_CELL_BASED_40NM, VOLTAGES, 500)
        np.testing.assert_array_equal(a.errors, b.errors)


class TestRetentionFailureCurve:
    VOLTS = np.linspace(0.4, 1.0, 9)

    def test_matches_die_population_bit_exactly(self):
        """BatchCampaign replays DiePopulation's exact RNG streams."""
        population = DiePopulation(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM,
            words=128, bits=32, n_dies=5, seed=2014,
        )
        expected = population.cumulative_failure_curve(self.VOLTS)
        curve = BatchCampaign(seed=2014).retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            n_dies=5, words=128, bits=32,
        )
        np.testing.assert_array_equal(curve, expected)

    def test_process_fanout_is_identical_to_serial(self):
        serial = BatchCampaign(seed=2014).retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            n_dies=4, words=64, bits=32,
        )
        fanned = BatchCampaign(seed=2014, processes=2).retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            n_dies=4, words=64, bits=32,
        )
        np.testing.assert_array_equal(serial, fanned)

    def test_curve_is_monotonically_non_increasing(self):
        curve = BatchCampaign(seed=3).retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            n_dies=3, words=64, bits=32,
        )
        assert np.all(np.diff(curve) <= 0.0)


@pytest.fixture(scope="module")
def fft_fixture():
    program = build_fft_program(64)
    golden = program.expected_output(list(program.data_words[:64]))
    return program, golden


class TestCampaignFanout:
    def test_parallel_campaign_matches_serial(self, fft_fixture):
        program, golden = fft_fixture
        kwargs = dict(
            workload=program.workload,
            golden=golden,
            access_model=ACCESS_CELL_BASED_40NM_TYPICAL,
            vdd=0.40,
            runs=4,
            seed_base=100,
            macro_style="cell-based",
        )
        serial = run_campaign(SecdedRunner, **kwargs)
        fanned = run_campaign(SecdedRunner, processes=2, **kwargs)
        assert serial.correct == fanned.correct
        assert serial.silent_corruption == fanned.silent_corruption
        assert serial.detected_failure == fanned.detected_failure
        assert serial.total_injected_bits == fanned.total_injected_bits
        assert serial.total_rollbacks == fanned.total_rollbacks
        assert serial.failures_by_kind == fanned.failures_by_kind
