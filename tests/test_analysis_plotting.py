"""Tests for ASCII plotting and the execution profiler."""

import pytest

from repro.analysis.ascii_plot import histogram, line_plot
from repro.soc.assembler import assemble
from repro.soc.cpu import StopReason
from repro.soc.isa import Opcode
from repro.soc.memory import FaultyMemory
from repro.soc.platform import Platform
from repro.soc.ports import RawPort
from repro.soc.profiler import ProfilingPort
from repro.workloads.fft import build_fft_program


class TestLinePlot:
    def test_renders_extremes_and_legend(self):
        text = line_plot(
            [0.0, 0.5, 1.0],
            {"energy": [4.0, 1.0, 4.0]},
            width=20,
            height=6,
            title="U-shape",
            x_label="V",
        )
        assert "U-shape" in text
        assert "* energy" in text
        assert "(V)" in text
        assert "4" in text  # y-axis extreme label

    def test_multiple_series_get_distinct_markers(self):
        text = line_plot(
            [0, 1], {"a": [0, 1], "b": [1, 0]}, width=16, height=4
        )
        assert "* a" in text
        assert "o b" in text

    def test_log_axis_drops_non_positive(self):
        text = line_plot(
            [0, 1, 2],
            {"ber": [0.0, 1e-6, 1e-2]},
            width=16, height=4, logy=True,
        )
        assert "1e-06" in text or "0.01" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot([0, 1], {}, width=20, height=5)
        with pytest.raises(ValueError):
            line_plot([0, 1], {"a": [1]}, width=20, height=5)
        with pytest.raises(ValueError):
            line_plot([0, 1], {"a": [1, 2]}, width=4, height=2)
        with pytest.raises(ValueError):
            line_plot([0, 1], {"a": [0.0, -1.0]}, logy=True)


class TestHistogram:
    def test_bars_sorted_and_scaled(self):
        text = histogram({"lw": 10, "mul": 40, "sw": 5}, width=20)
        lines = text.splitlines()
        assert lines[0].strip().startswith("mul")
        assert lines[0].count("#") == 20
        assert lines[-1].strip().startswith("sw")

    def test_zero_counts_ok(self):
        text = histogram({"a": 0, "b": 0})
        assert "a" in text and "b" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram({})
        with pytest.raises(ValueError):
            histogram({"a": -1})


class TestProfiler:
    def _run_fft(self, n=64):
        program = build_fft_program(n)
        im = FaultyMemory("IM", 1024, 32)
        sp = FaultyMemory("SP", 2048, 32)
        port = ProfilingPort(RawPort(im))
        platform = Platform(im, port, sp, RawPort(sp))
        platform.load_program(list(program.workload.program_words))
        platform.load_data(list(program.data_words))
        while platform.run_until_stop() is not StopReason.HALT:
            pass
        return platform, port.profile

    def test_counts_every_fetch(self):
        platform, profile = self._run_fft()
        assert profile.fetches == platform.cpu.state.instructions
        assert sum(profile.by_opcode.values()) == profile.fetches

    def test_fft_is_butterfly_dominated(self):
        """The generated FFT must spend its time where an FFT should:
        the multiply/shift/load-store mix of the butterfly loop."""
        _, profile = self._run_fft()
        assert profile.fraction(Opcode.MUL) > 0.05
        assert profile.fraction(Opcode.LW, Opcode.SW) > 0.08
        assert profile.fraction(Opcode.MUL, Opcode.MULH) < 0.25

    def test_hottest_pcs_are_in_a_loop(self):
        _, profile = self._run_fft()
        hottest = profile.hottest(3)
        assert hottest[0][1] > 300  # executed hundreds of times
        with pytest.raises(ValueError):
            profile.hottest(0)

    def test_histogram_integration(self):
        _, profile = self._run_fft(16)
        text = histogram(profile.opcode_histogram(), width=30)
        assert "MUL" in text

    def test_passthrough_preserves_counters(self):
        im = FaultyMemory("IM", 16, 32)
        port = ProfilingPort(RawPort(im))
        port.load(assemble("nop\nhalt"))
        assert port.peek(0) == assemble("nop\nhalt")[0]
        port.read(0)
        assert im.counters.reads == 1
        assert port.stats.corrected_words == 0

    def test_empty_profile_fraction_raises(self):
        from repro.soc.profiler import Profile

        with pytest.raises(ValueError):
            Profile().fraction(Opcode.MUL)
