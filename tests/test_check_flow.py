"""Tests for ``repro.check.flow`` — the interprocedural layer.

Covers the call-graph builder's edge cases (aliased imports, method
dispatch, recursion, cycles), the transitive taint walks behind
REP301/REP103/REP104 on multi-file projects with ≥3-deep chains, the
lock-discipline analysis against the *real* job server, and the two
engine satellites: the mtime+size parse cache (including deliberate
poisoning) and ``--changed-only`` report filtering.
"""

import os
import pickle
from pathlib import Path

from repro.check import load_source, run_check
from repro.check.cache import SCHEMA_VERSION, ParseCache
from repro.check.engine import check_files
from repro.check.flow.callgraph import CallGraph

REPO_ROOT = Path(__file__).resolve().parent.parent


def _contexts(sources: dict) -> list:
    loaded = [
        load_source(source, rel_path)
        for rel_path, source in sources.items()
    ]
    for context in loaded:
        assert not hasattr(context, "rule"), "fixture failed to parse"
    return loaded


# ----------------------------------------------------------------------
# Call-graph construction
# ----------------------------------------------------------------------
def test_callgraph_resolves_aliased_module_import():
    files = _contexts(
        {
            "src/repro/soc/faults.py": (
                "def inject(word: int) -> int:\n"
                "    return word ^ 1\n"
            ),
            "src/repro/soc/top.py": (
                "import repro.soc.faults as flt\n"
                "def step(word: int) -> int:\n"
                "    return flt.inject(word)\n"
            ),
        }
    )
    graph = CallGraph(files)
    assert "repro.soc.faults:inject" in graph.edges_of(
        "repro.soc.top:step"
    )


def test_callgraph_resolves_from_import_alias():
    files = _contexts(
        {
            "src/repro/soc/faults.py": (
                "def inject(word: int) -> int:\n"
                "    return word ^ 1\n"
            ),
            "src/repro/soc/top.py": (
                "from repro.soc.faults import inject as poke\n"
                "def step(word: int) -> int:\n"
                "    return poke(word)\n"
            ),
        }
    )
    graph = CallGraph(files)
    assert "repro.soc.faults:inject" in graph.edges_of(
        "repro.soc.top:step"
    )


def test_callgraph_resolves_self_method_dispatch():
    files = _contexts(
        {
            "src/repro/soc/core.py": (
                "class Core:\n"
                "    def step(self) -> int:\n"
                "        return self._fetch()\n"
                "    def _fetch(self) -> int:\n"
                "        return 0\n"
            ),
        }
    )
    graph = CallGraph(files)
    assert "repro.soc.core:Core._fetch" in graph.edges_of(
        "repro.soc.core:Core.step"
    )


def test_callgraph_reachability_handles_recursion_and_cycles():
    files = _contexts(
        {
            "src/repro/soc/walk.py": (
                "def spin(n: int) -> int:\n"
                "    return spin(n - 1) if n else 0\n"
                "def ping(n: int) -> int:\n"
                "    return pong(n)\n"
                "def pong(n: int) -> int:\n"
                "    return ping(n - 1) if n else 0\n"
            ),
        }
    )
    graph = CallGraph(files)
    parents = graph.reachable(["repro.soc.walk:ping"], ())
    assert "repro.soc.walk:pong" in parents
    # A self-loop terminates and stays reachable from itself.
    parents = graph.reachable(["repro.soc.walk:spin"], ())
    assert "repro.soc.walk:spin" in parents


def test_callgraph_chain_renders_call_path():
    files = _contexts(
        {
            "src/repro/soc/chainmod.py": (
                "def a() -> int:\n"
                "    return b()\n"
                "def b() -> int:\n"
                "    return c()\n"
                "def c() -> int:\n"
                "    return 0\n"
            ),
        }
    )
    graph = CallGraph(files)
    parents = graph.reachable(["repro.soc.chainmod:a"], ())
    chain = graph.chain(parents, "repro.soc.chainmod:c")
    assert chain == (
        "repro.soc.chainmod.a -> repro.soc.chainmod.b "
        "-> repro.soc.chainmod.c"
    )


# ----------------------------------------------------------------------
# Transitive rules on multi-file projects (≥3-deep chains)
# ----------------------------------------------------------------------
def test_rep301_three_hop_chain_through_aliased_import():
    # soc replay path -> util helper (aliased import) -> wall clock.
    files = _contexts(
        {
            "src/repro/util/clockish.py": (
                "import time\n"
                "def _now() -> float:\n"
                "    return time.time()\n"
                "def stamp() -> float:\n"
                "    return _now()\n"
            ),
            "src/repro/soc/replay.py": (
                "import repro.util.clockish as ck\n"
                "def run_point() -> float:\n"
                "    return ck.stamp()\n"
            ),
        }
    )
    result = check_files(files, select=["REP301"])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.path == "src/repro/util/clockish.py"
    assert "reached via" in finding.message
    assert "run_point" in finding.message


def test_rep301_untouched_helper_module_is_clean():
    # The same impure helper with no replay-path caller is legal.
    files = _contexts(
        {
            "src/repro/util/clockish.py": (
                "import time\n"
                "def stamp() -> float:\n"
                "    return time.time()\n"
            ),
        }
    )
    result = check_files(files, select=["REP301"])
    assert result.findings == []


def test_rep103_three_hop_chain_within_store():
    files = _contexts(
        {
            "src/repro/store/codec.py": (
                "import os\n"
                "def _salt() -> str:\n"
                "    return os.urandom(4).hex()\n"
                "def encode(payload: str) -> str:\n"
                "    return payload + _salt()\n"
            ),
            "src/repro/store/keys.py": (
                "from repro.store.codec import encode\n"
                "def derive_key(payload: str) -> str:\n"
                "    return encode(payload)\n"
            ),
        }
    )
    result = check_files(files, select=["REP103"])
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.path == "src/repro/store/codec.py"
    # Every store function is a taint root, so the private helper is
    # flagged even though only derive_key -> encode -> _salt uses it.
    assert "os.urandom" in finding.message


def test_rep104_cross_package_chain_from_store_root():
    # The store's key path reaches an impure helper that lives in
    # another package; the finding lands on the helper's file.
    files = _contexts(
        {
            "src/repro/store/keys.py": (
                "import repro.analysis.ident as ident\n"
                "def derive_key(payload: str) -> str:\n"
                "    return payload + ident.tag()\n"
            ),
            "src/repro/analysis/ident.py": (
                "import os\n"
                "def _pid() -> int:\n"
                "    return os.getpid()\n"
                "def tag() -> str:\n"
                "    return str(_pid())\n"
            ),
        }
    )
    result = check_files(files, select=["REP103", "REP104"])
    assert {f.rule for f in result.findings} == {"REP104"}
    assert result.findings[0].path == "src/repro/analysis/ident.py"
    assert "derive_key" in result.findings[0].message


def test_rep201_validation_through_aliased_cross_module_call():
    files = _contexts(
        {
            "src/repro/memdev/gates.py": (
                "from repro.core.errors import validate_vdd\n"
                "def gate(vdd: float) -> float:\n"
                "    return validate_vdd(vdd, 'gate')\n"
            ),
            "src/repro/memdev/cells.py": (
                "import repro.memdev.gates as g\n"
                "def read_cell(vdd: float) -> float:\n"
                "    return g.gate(vdd) * 2.0\n"
            ),
        }
    )
    result = check_files(files, select=["REP201"])
    assert result.findings == [], [f.message for f in result.findings]


def test_rep201_recursive_vdd_function_terminates_and_flags():
    files = _contexts(
        {
            "src/repro/memdev/spin.py": (
                "def settle(vdd: float) -> float:\n"
                "    return settle(vdd) if vdd > 1.0 else vdd\n"
            ),
        }
    )
    result = check_files(files, select=["REP201"])
    assert [f.rule for f in result.findings] == ["REP201"]


# ----------------------------------------------------------------------
# REP503 against the real job server
# ----------------------------------------------------------------------
def test_rep503_real_serving_layer_is_clean():
    result = run_check(
        [str(REPO_ROOT / "src" / "repro" / "serve")],
        select=["REP503"],
    )
    assert result.findings == [], [f.message for f in result.findings]


# ----------------------------------------------------------------------
# Parse cache
# ----------------------------------------------------------------------
def _write_module(tree: Path, text: str) -> Path:
    tree.mkdir(parents=True, exist_ok=True)
    target = tree / "mod.py"
    target.write_text(text, encoding="utf-8")
    return target


def test_parse_cache_round_trip_and_hit_counters(tmp_path):
    target = _write_module(
        tmp_path / "repro" / "analysis", "X = 1\n"
    )
    cache = ParseCache(tmp_path / "cache")
    first = run_check([str(tmp_path)], cache=cache)
    assert cache.hits == 0
    second = run_check([str(tmp_path)], cache=cache)
    assert cache.hits == 1
    assert first.findings == second.findings
    assert target.exists()


def test_parse_cache_touch_same_content_still_hits(tmp_path):
    # CI restores the cache onto a fresh checkout: every mtime is new
    # but the bytes match, so the content-hash fallback keeps the hit.
    target = _write_module(
        tmp_path / "repro" / "analysis", "X = 1\n"
    )
    cache = ParseCache(tmp_path / "cache")
    run_check([str(tmp_path)], cache=cache)
    stat = target.stat()
    os.utime(
        target, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000)
    )
    assert run_check([str(tmp_path)], cache=cache).findings == []
    assert cache.hits == 1


def test_parse_cache_stale_entry_reparsed(tmp_path):
    tree = tmp_path / "repro" / "analysis"
    target = _write_module(tree, "X = 1\n")
    cache = ParseCache(tmp_path / "cache")
    assert run_check([str(tmp_path)], cache=cache).findings == []
    # The edit introduces a violation; a stale cache hit would hide it.
    target.write_text(
        "import numpy as np\nRNG = np.random.default_rng()\n",
        encoding="utf-8",
    )
    result = run_check([str(tmp_path)], cache=cache)
    assert {f.rule for f in result.findings} == {"REP101"}


def test_parse_cache_poisoned_entries_are_misses(tmp_path):
    tree = tmp_path / "repro" / "analysis"
    target = _write_module(
        tree,
        "import numpy as np\nRNG = np.random.default_rng()\n",
    )
    cache = ParseCache(tmp_path / "cache")
    baseline = run_check([str(tmp_path)], cache=cache)
    assert {f.rule for f in baseline.findings} == {"REP101"}
    entries = list((tmp_path / "cache").glob("*.pkl"))
    assert entries, "cache wrote no entries"

    poisons = [
        b"garbage, not a pickle",
        pickle.dumps(["not", "a", "dict"]),
        pickle.dumps({"schema": SCHEMA_VERSION - 1}),
        pickle.dumps(
            {
                "schema": SCHEMA_VERSION,
                "stat": (0, 0),
                "rel_path": "somewhere/else.py",
                "context": None,
            }
        ),
    ]
    for poison in poisons:
        for entry in entries:
            entry.write_bytes(poison)
        poisoned = ParseCache(tmp_path / "cache")
        result = run_check([str(tmp_path)], cache=poisoned)
        assert poisoned.hits == 0, poison[:30]
        assert {f.rule for f in result.findings} == {"REP101"}
    assert target.exists()


def test_parse_cache_unwritable_directory_is_harmless(tmp_path):
    _write_module(
        tmp_path / "repro" / "analysis", "X = 1\n"
    )
    blocker = tmp_path / "cache"
    blocker.write_text("a file where the cache dir should go")
    cache = ParseCache(blocker)
    result = run_check([str(tmp_path)], cache=cache)
    assert result.findings == []


# ----------------------------------------------------------------------
# --changed-only report filtering
# ----------------------------------------------------------------------
def test_report_only_filters_findings_but_indexes_everything(tmp_path):
    tree = tmp_path / "repro" / "analysis"
    tree.mkdir(parents=True)
    (tree / "one.py").write_text(
        "import numpy as np\nRNG1 = np.random.default_rng()\n",
        encoding="utf-8",
    )
    (tree / "two.py").write_text(
        "import numpy as np\nRNG2 = np.random.default_rng()\n",
        encoding="utf-8",
    )
    full = run_check([str(tmp_path)])
    assert len(full.findings) == 2

    one_rel = (tree / "one.py").as_posix()
    filtered = run_check([str(tmp_path)], report_only=[one_rel])
    assert [f.path for f in filtered.findings] == [one_rel]
    # The whole project was still parsed and counted.
    assert filtered.files_checked == full.files_checked


def test_report_only_keeps_cross_file_cause_visible(tmp_path):
    # The impure helper is the *changed* file; the store root that
    # makes it a violation is unchanged.  Indexing the whole project
    # means the changed-file run still reports it.
    tree = tmp_path / "repro"
    (tree / "store").mkdir(parents=True)
    (tree / "analysis").mkdir(parents=True)
    (tree / "store" / "keys.py").write_text(
        "import repro.analysis.ident as ident\n"
        "def derive_key(payload: str) -> str:\n"
        "    return payload + ident.tag()\n",
        encoding="utf-8",
    )
    helper = tree / "analysis" / "ident.py"
    helper.write_text(
        "import os\ndef tag() -> str:\n    return str(os.getpid())\n",
        encoding="utf-8",
    )
    result = run_check(
        [str(tmp_path)], report_only=[helper.as_posix()]
    )
    assert {f.rule for f in result.findings} == {"REP104"}
