"""Tests for ``repro check`` — the engine, every rule, and the CLI.

Each rule is exercised against a paired good/bad fixture under
``tests/fixtures/check/``: the bad fixture must produce the rule's
finding, the good fixture must come back completely clean.  Fixtures
are loaded through :func:`repro.check.load_source` with a *synthetic*
repo path so the path-scoped rules (replay path, resilience, ...) see
the snippet where the rule expects it to live.

The suite also pins the meta-properties the PR promises: the live tree
is clean (``repro check src tests`` exits 0), a deliberately inserted
violation fails the check, and the suppression ledger can only shrink.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check import RULES, load_source, run_check
from repro.check.engine import check_files, discover
from repro.check.report import (
    format_github,
    format_json,
    format_suppressions,
    format_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "check"

#: Maximum allowed justified suppressions in src/.  This number may
#: only ever SHRINK: new code must satisfy the rules outright, not
#: suppress them.  (Raising it needs a PR-review-level justification.)
MAX_SUPPRESSIONS = 4

#: rule id -> synthetic repo path its fixtures are checked under.
FIXTURE_PATHS = {
    "REP101": "src/repro/analysis/example.py",
    "REP102": "src/repro/soc/simd.py",
    "REP103": "src/repro/store/example.py",
    "REP104": "src/repro/serve/example.py",
    "REP201": "src/repro/memdev/example.py",
    "REP301": "src/repro/soc/example.py",
    "REP401": "src/repro/soc/example.py",
    "REP402": "src/repro/soc/example.py",
    "REP403": "src/repro/obs/names.py",
    "REP501": "src/repro/analysis/example.py",
    "REP502": "src/repro/analysis/example.py",
    "REP503": "src/repro/serve/example.py",
    "REP601": "src/repro/analysis/example.py",
    "REP701": "src/repro/resilience/example.py",
    "REP702": "src/repro/serve/example.py",
}


def check_fixture(name: str, rel_path: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    loaded = load_source(source, rel_path)
    assert not hasattr(loaded, "rule"), f"fixture {name} failed to parse"
    return check_files([loaded])


# ----------------------------------------------------------------------
# Every rule: bad fixture fires, good fixture is clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize("rule_id", sorted(FIXTURE_PATHS))
def test_bad_fixture_fires(rule_id):
    result = check_fixture(
        f"{rule_id.lower()}_bad.py", FIXTURE_PATHS[rule_id]
    )
    fired = {finding.rule for finding in result.findings}
    assert rule_id in fired, (
        f"{rule_id} did not fire on its bad fixture; got {fired}"
    )


@pytest.mark.parametrize("rule_id", sorted(FIXTURE_PATHS))
def test_good_fixture_clean(rule_id):
    result = check_fixture(
        f"{rule_id.lower()}_good.py", FIXTURE_PATHS[rule_id]
    )
    assert result.findings == [], (
        f"good fixture for {rule_id} reported: "
        f"{[f.message for f in result.findings]}"
    )
    assert result.exit_code == 0


def test_every_registered_rule_has_fixtures():
    for rule_id in RULES:
        assert (FIXTURES / f"{rule_id.lower()}_bad.py").is_file()
        assert (FIXTURES / f"{rule_id.lower()}_good.py").is_file()


def test_registry_iteration_order_is_sorted():
    # The registry must not depend on module import order: reports,
    # --list-rules, and suppression ledgers all iterate it, and their
    # output is diffed in CI.
    assert list(RULES) == sorted(RULES)


def test_fixture_paths_cover_every_registered_rule():
    assert set(FIXTURE_PATHS) == set(RULES)


# ----------------------------------------------------------------------
# Rule-specific behaviours beyond the basic pair
# ----------------------------------------------------------------------
def test_rep201_one_level_delegation_credited():
    source = (FIXTURES / "rep201_good.py").read_text(encoding="utf-8")
    # total_energy() never calls validate_vdd itself; it is clean only
    # because read_energy() (same project) validates directly.
    assert "total_energy" in source
    result = check_fixture("rep201_good.py", FIXTURE_PATHS["REP201"])
    assert result.findings == []


def test_rep201_multi_hop_delegation_credited():
    # The interprocedural funnel follows vdd through any number of
    # call hops: outer -> middle -> gate -> validate_vdd is clean.
    source = (
        "def gate(vdd: float) -> float:\n"
        "    from repro.core.errors import validate_vdd\n"
        "    return validate_vdd(vdd, 'gate')\n"
        "def middle(vdd: float) -> float:\n"
        "    return gate(vdd)\n"
        "def outer(vdd: float) -> float:\n"
        "    return middle(vdd)\n"
    )
    loaded = load_source(source, "src/repro/memdev/example.py")
    result = check_files([loaded])
    assert result.findings == [], [f.message for f in result.findings]


def test_rep201_delegation_to_nonvalidating_chain_still_flagged():
    # Depth alone earns no credit: the chain must actually reach
    # validate_vdd with the value.
    source = (
        "def sink(vdd: float) -> float:\n"
        "    return vdd * 2.0\n"
        "def middle(vdd: float) -> float:\n"
        "    return sink(vdd)\n"
        "def outer(vdd: float) -> float:\n"
        "    return middle(vdd)\n"
    )
    loaded = load_source(source, "src/repro/memdev/example.py")
    result = check_files([loaded])
    flagged = {f.message for f in result.findings}
    assert all(f.rule == "REP201" for f in result.findings)
    for name in ("sink", "middle", "outer"):
        assert any(name in m for m in flagged), (name, flagged)


def test_rules_scoped_to_their_paths():
    # The same wall-clock read is legal off the replay path...
    bad = (FIXTURES / "rep301_bad.py").read_text(encoding="utf-8")
    off_path = check_files(
        [load_source(bad, "src/repro/analysis/example.py")]
    )
    assert all(f.rule != "REP301" for f in off_path.findings)
    # ...and unseeded RNG is legal in tests.
    rng_bad = (FIXTURES / "rep101_bad.py").read_text(encoding="utf-8")
    in_tests = check_files(
        [load_source(rng_bad, "tests/test_example.py")]
    )
    assert in_tests.findings == []


def test_rep000_syntax_error_is_a_finding():
    loaded = load_source("def broken(:\n", "src/repro/soc/oops.py")
    assert loaded.rule == "REP000"
    result = check_files([], parse_failures=[loaded])
    assert result.exit_code == 1


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_justified_noqa_suppresses():
    source = (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng()  "
        "# repro: noqa[REP101] fixture: entropy is the point here\n"
    )
    result = check_files(
        [load_source(source, "src/repro/analysis/example.py")]
    )
    assert result.findings == []
    assert len(result.suppressions) == 1
    assert result.suppressions[0].justification


def test_justified_noqa_suppresses_interprocedural_rule():
    # Suppressions work for flow-based rules too: the finding lands on
    # the touch line, which is where the noqa must sit.
    source = (FIXTURES / "rep503_bad.py").read_text(encoding="utf-8")
    source = source.replace(
        "self._jobs.pop(job_id)",
        "self._jobs.pop(job_id)  "
        "# repro: noqa[REP503] fixture: race is the point here",
    )
    result = check_files(
        [load_source(source, FIXTURE_PATHS["REP503"])]
    )
    flagged = {f.line for f in result.findings}
    assert len(result.suppressions) == 1
    # The two un-suppressed touches on other lines still fire.
    assert flagged, "expected remaining REP503 findings"


def test_unjustified_noqa_is_rep001():
    source = (
        "import numpy as np\n"
        "def sample():\n"
        "    return np.random.default_rng()  # repro: noqa[REP101]\n"
    )
    result = check_files(
        [load_source(source, "src/repro/analysis/example.py")]
    )
    assert {f.rule for f in result.findings} == {"REP001"}


def test_noqa_mentioned_in_docstring_is_not_a_suppression():
    source = (
        '"""Suppress with ``# repro: noqa[REP101] why``."""\n'
        "X = 1\n"
    )
    result = check_files(
        [load_source(source, "src/repro/analysis/example.py")]
    )
    assert result.suppressions == []


def test_suppression_ledger_only_shrinks():
    result = run_check([str(REPO_ROOT / "src")])
    assert len(result.suppressions) <= MAX_SUPPRESSIONS, (
        "new suppressions added; fix the violation instead, or shrink "
        "an existing suppression to make room"
    )
    for suppression in result.suppressions:
        assert suppression.justification, suppression
        assert all(rule in RULES for rule in suppression.rules)


# ----------------------------------------------------------------------
# The live tree is clean, and tampering breaks it
# ----------------------------------------------------------------------
def test_self_check_src_and_tests_clean():
    result = run_check(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
    )
    assert result.findings == [], format_text(result)
    assert result.exit_code == 0


def test_inserted_violation_fails_the_check(tmp_path):
    tree = tmp_path / "repro" / "soc"
    tree.mkdir(parents=True)
    bad = tree / "faults.py"
    bad.write_text(
        "import numpy as np\n"
        "def inject(vdd: float) -> float:\n"
        "    rng = np.random.default_rng()\n"
        "    return vdd * float(rng.random())\n",
        encoding="utf-8",
    )
    result = run_check([str(tmp_path)])
    fired = {finding.rule for finding in result.findings}
    assert "REP101" in fired
    assert "REP201" in fired
    assert result.exit_code == 1


def test_discover_skips_fixture_directories():
    targets = discover([str(REPO_ROOT / "tests")])
    assert targets, "discovery found no test files"
    assert not any("fixtures" in path.parts for path in targets)


# ----------------------------------------------------------------------
# Output formats and the CLI
# ----------------------------------------------------------------------
def _bad_result():
    bad = (FIXTURES / "rep101_bad.py").read_text(encoding="utf-8")
    return check_files(
        [load_source(bad, "src/repro/analysis/example.py")]
    )


def test_format_json_round_trips():
    document = json.loads(format_json(_bad_result()))
    assert document["exit_code"] == 1
    assert document["findings"][0]["rule"] == "REP101"


def test_format_github_annotations():
    text = format_github(_bad_result())
    assert text.startswith("::error file=src/repro/analysis/example.py")
    assert "title=REP101" in text


def test_format_suppressions_is_json():
    document = json.loads(format_suppressions(_bad_result()))
    assert document["count"] == 0
    assert document["suppressions"] == []


def test_cli_subcommand_end_to_end(tmp_path):
    tree = tmp_path / "repro" / "analysis"
    tree.mkdir(parents=True)
    (tree / "bad.py").write_text(
        "import numpy as np\n"
        "RNG = np.random.default_rng()\n",
        encoding="utf-8",
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "check", str(tmp_path),
         "--format=json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1, proc.stderr
    document = json.loads(proc.stdout)
    assert document["findings"][0]["rule"] == "REP101"


def test_cli_select_and_list_rules(capsys):
    from repro.check.cli import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out

    code = main(
        [str(REPO_ROOT / "src"), "--select", "REP701", "--format=text"]
    )
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_rejects_unknown_rule():
    from repro.check.cli import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--select", "REP999"])
    assert excinfo.value.code == 2
