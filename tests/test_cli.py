"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, run


class TestParser:
    def test_default_is_report(self):
        args = build_parser().parse_args([])
        assert args.exhibit == "report"
        assert args.fft == 64

    def test_exhibit_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig42"])

    def test_fft_option(self):
        args = build_parser().parse_args(["fig8", "--fft", "128"])
        assert args.fft == 128


class TestRun:
    def test_table2_contains_anchor_voltages(self):
        text = run(["table2"])
        assert "0.550" in text
        assert "0.331" in text
        assert "frequency" in text  # the 1.96 MHz binding column

    def test_table1_lists_all_designs(self):
        text = run(["table1"])
        for name in (
            "COTS-40nm", "CustomSRAM-40nm", "CellBased-65nm",
            "CellBased-imec-40nm",
        ):
            assert name in text

    def test_claims_quote_paper_values(self):
        text = run(["claims", "--fft", "16"])
        assert "paper: up to 3x" in text
        assert "paper: 3.3x" in text

    def test_fig8_renders_three_schemes(self):
        text = run(["fig8", "--fft", "16"])
        for scheme in ("none", "SECDED", "OCEAN"):
            assert scheme in text
        assert "OCEAN vs none" in text

    def test_rejects_non_power_of_two_fft(self):
        with pytest.raises(SystemExit, match="power of two"):
            run(["fig8", "--fft", "100"])
