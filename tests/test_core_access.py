"""Unit tests for the Eq. 5 access-error model (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_COMMERCIAL_40NM,
    AccessErrorModel,
)


class TestConstruction:
    def test_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            AccessErrorModel(amplitude=0.0, exponent=6.0, v_onset=0.85)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            AccessErrorModel(amplitude=6.0, exponent=-1.0, v_onset=0.85)

    def test_rejects_bad_onset(self):
        with pytest.raises(ValueError):
            AccessErrorModel(amplitude=6.0, exponent=6.0, v_onset=0.0)


class TestPowerLaw:
    def test_zero_at_and_above_onset(self):
        model = ACCESS_COMMERCIAL_40NM
        assert model.bit_error_probability(0.85) == 0.0
        assert model.bit_error_probability(1.1) == 0.0

    def test_paper_formula_below_onset(self):
        """p = 6 * (0.85 - V)^6.14 exactly, per Section IV."""
        model = ACCESS_COMMERCIAL_40NM
        for v in (0.5, 0.6, 0.7, 0.8):
            expected = 6.0 * (0.85 - v) ** 6.14
            assert model.bit_error_probability(v) == pytest.approx(expected)

    def test_clipped_at_one(self):
        model = AccessErrorModel(amplitude=100.0, exponent=1.0, v_onset=0.9)
        assert model.bit_error_probability(0.1) == 1.0

    def test_monotone_decreasing(self):
        model = ACCESS_COMMERCIAL_40NM
        probs = [model.bit_error_probability(v) for v in (0.4, 0.5, 0.6, 0.7)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_rejects_negative_vdd(self):
        with pytest.raises(ValueError):
            ACCESS_COMMERCIAL_40NM.bit_error_probability(-0.2)

    @given(vdd=st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=50, deadline=None)
    def test_probability_in_unit_interval(self, vdd):
        p = ACCESS_COMMERCIAL_40NM.bit_error_probability(vdd)
        assert 0.0 <= p <= 1.0


class TestInverse:
    def test_round_trip(self):
        model = ACCESS_COMMERCIAL_40NM
        for p in (1e-17, 1e-9, 1e-3):
            v = model.vdd_for_bit_error(p)
            assert model.bit_error_probability(v) == pytest.approx(p, rel=1e-9)

    def test_lower_probability_needs_higher_voltage(self):
        model = ACCESS_COMMERCIAL_40NM
        assert model.vdd_for_bit_error(1e-15) > model.vdd_for_bit_error(1e-6)

    def test_rejects_zero_probability(self):
        with pytest.raises(ValueError):
            ACCESS_COMMERCIAL_40NM.vdd_for_bit_error(0.0)


class TestPaperConstants:
    def test_commercial_fit_parameters(self):
        assert ACCESS_COMMERCIAL_40NM.amplitude == 6.0
        assert ACCESS_COMMERCIAL_40NM.exponent == 6.14
        assert ACCESS_COMMERCIAL_40NM.v_onset == 0.85

    def test_cell_based_onset_matches_paper(self):
        """'the minimal access voltage is V0=0.55 (in the worst-case)'"""
        assert ACCESS_CELL_BASED_40NM.v_onset == pytest.approx(0.55, abs=0.01)

    def test_cell_based_accesses_below_commercial(self):
        """At 0.6 V the commercial memory fails, the cell-based works."""
        assert ACCESS_COMMERCIAL_40NM.bit_error_probability(0.6) > 0.0
        assert ACCESS_CELL_BASED_40NM.bit_error_probability(0.6) == 0.0

    def test_cell_based_access_near_retention(self):
        """'going down to a few 10mV above the retention voltage': the
        cell-based onset (0.55 worst-case) with the Table 2 OCEAN
        operating point 0.33 V sits close above the 0.32 V retention."""
        from repro.core.retention import RETENTION_CELL_BASED_40NM

        retention = RETENTION_CELL_BASED_40NM.first_failure_voltage(32 * 1024)
        ocean_v = 0.33
        assert 0.0 < ocean_v - retention < 0.05


class TestFitting:
    def test_recovers_known_model_fixed_onset(self):
        model = ACCESS_COMMERCIAL_40NM
        voltages = np.linspace(0.45, 0.8, 15)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        fitted = AccessErrorModel.fit(voltages, rates, v_onset=0.85)
        assert fitted.amplitude == pytest.approx(6.0, rel=1e-6)
        assert fitted.exponent == pytest.approx(6.14, rel=1e-6)

    def test_recovers_onset_by_scan(self):
        model = ACCESS_COMMERCIAL_40NM
        voltages = np.linspace(0.45, 0.8, 30)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        fitted = AccessErrorModel.fit(voltages, rates)
        assert fitted.v_onset == pytest.approx(0.85, abs=0.02)
        assert fitted.exponent == pytest.approx(6.14, rel=0.15)

    def test_fit_with_measurement_noise(self):
        model = ACCESS_COMMERCIAL_40NM
        rng = np.random.default_rng(4)
        voltages = np.linspace(0.45, 0.8, 30)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        noisy = rates * rng.lognormal(0.0, 0.15, rates.shape)
        fitted = AccessErrorModel.fit(voltages, noisy, v_onset=0.85)
        assert fitted.exponent == pytest.approx(6.14, rel=0.1)

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="three"):
            AccessErrorModel.fit(
                np.array([0.5, 0.6]), np.array([1e-3, 1e-5])
            )

    def test_rejects_onset_below_data(self):
        with pytest.raises(ValueError, match="onset"):
            AccessErrorModel.fit(
                np.array([0.5, 0.6, 0.7]),
                np.array([1e-2, 1e-4, 1e-6]),
                v_onset=0.65,
            )


class TestInvalidVoltageError:
    """The typed voltage-validation error shared across the stack."""

    def test_subclasses_value_error(self):
        from repro.core.errors import InvalidVoltageError

        assert issubclass(InvalidVoltageError, ValueError)

    @pytest.mark.parametrize("bad", [-0.2, float("nan"), float("inf"), "0.4v"])
    def test_bit_error_probability_raises_typed(self, bad):
        from repro.core.errors import InvalidVoltageError

        with pytest.raises(InvalidVoltageError):
            ACCESS_COMMERCIAL_40NM.bit_error_probability(bad)

    def test_fault_model_set_vdd_raises_typed(self):
        from repro.core.errors import InvalidVoltageError
        from repro.soc.faults import VoltageFaultModel

        faults = VoltageFaultModel(ACCESS_COMMERCIAL_40NM, 32, 0.6)
        with pytest.raises(InvalidVoltageError):
            faults.set_vdd(float("nan"))
        with pytest.raises(InvalidVoltageError):
            faults.set_vdd(-0.1)
        # The engine still works after a rejected move.
        faults.set_vdd(0.5)
        assert faults.vdd == 0.5

    def test_campaign_entry_raises_typed(self):
        from repro.analysis.campaign import run_campaign
        from repro.core.errors import InvalidVoltageError
        from repro.mitigation import SecdedRunner

        with pytest.raises(InvalidVoltageError):
            run_campaign(
                SecdedRunner,
                workload=None,
                golden=[],
                access_model=ACCESS_COMMERCIAL_40NM,
                vdd=-0.4,
                runs=1,
            )

    def test_error_names_context_and_value(self):
        from repro.core.errors import InvalidVoltageError, validate_vdd

        with pytest.raises(InvalidVoltageError) as excinfo:
            validate_vdd(float("-inf"), "unit-test")
        assert excinfo.value.context == "unit-test"
        assert "unit-test" in str(excinfo.value)
