"""Tests for the memory calculator and the mitigation planner."""

import pytest

from repro.core.fit_solver import SCHEME_NONE
from repro.core.planner import (
    OVERHEAD_NONE,
    OVERHEAD_SECDED,
    MitigationPlanner,
    SchemeOverhead,
)
from repro.memdev.library import cell_based_imec_40nm


@pytest.fixture(scope="module")
def calculator():
    return cell_based_imec_40nm().calculator()


class TestOperatingPoint:
    def test_fields_populated(self, calculator):
        point = calculator.operating_point(0.5, 1e6)
        assert point.read_energy > 0.0
        assert point.write_energy >= point.read_energy
        assert point.total_power == pytest.approx(
            point.dynamic_power + point.leakage_power
        )
        assert point.energy_per_access > 0.0

    def test_dynamic_power_scales_with_frequency(self, calculator):
        slow = calculator.operating_point(0.5, 1e5)
        fast = calculator.operating_point(0.5, 1e6)
        assert fast.dynamic_power == pytest.approx(
            10.0 * slow.dynamic_power
        )

    def test_activity_scales_dynamic_power(self, calculator):
        full = calculator.operating_point(0.5, 1e6, activity=1.0)
        half = calculator.operating_point(0.5, 1e6, activity=0.5)
        assert half.dynamic_power == pytest.approx(
            0.5 * full.dynamic_power
        )

    def test_frequency_feasibility_flag(self, calculator):
        ok = calculator.operating_point(1.1, 1e6)
        assert ok.frequency_feasible
        impossible = calculator.operating_point(0.35, 50e6)
        assert not impossible.frequency_feasible

    def test_error_rates_reported(self, calculator):
        point = calculator.operating_point(0.40, 1e5)
        assert point.access_bit_error > 0.0
        clean = calculator.operating_point(0.60, 1e5)
        assert clean.access_bit_error == 0.0

    def test_rejects_bad_inputs(self, calculator):
        with pytest.raises(ValueError):
            calculator.operating_point(0.5, 0.0)
        with pytest.raises(ValueError):
            calculator.operating_point(0.5, 1e6, activity=1.5)

    def test_rejects_bad_read_fraction(self):
        with pytest.raises(ValueError):
            cell_based_imec_40nm().calculator(read_fraction=1.2)


class TestSweepAndOptimum:
    def test_sweep_length(self, calculator):
        points = calculator.sweep([0.4, 0.6, 0.8], 1e5)
        assert [p.vdd for p in points] == [0.4, 0.6, 0.8]

    def test_energy_minimal_voltage_is_interior(self, calculator):
        """Figure 1's message: the optimum sits at near-threshold, not
        at the lowest feasible voltage (leakage) nor at nominal (CV^2)."""
        import numpy as np

        grid = np.arange(0.35, 1.15, 0.025)
        best = calculator.energy_minimal_voltage(100e3, grid)
        assert 0.35 < best.vdd < 0.9

    def test_energy_minimal_voltage_respects_frequency(self, calculator):
        import numpy as np

        grid = np.arange(0.35, 1.15, 0.05)
        fast = calculator.energy_minimal_voltage(20e6, grid)
        slow = calculator.energy_minimal_voltage(50e3, grid)
        assert fast.vdd > slow.vdd

    def test_unreachable_frequency_raises(self, calculator):
        with pytest.raises(ValueError):
            calculator.energy_minimal_voltage(1e5, [0.2, 0.25])


class TestSchemeOverhead:
    def test_defaults_are_identity(self):
        assert OVERHEAD_NONE.access_energy_factor == 1.0
        assert OVERHEAD_NONE.cycle_overhead == 0.0

    def test_secded_reflects_39_over_32(self):
        assert OVERHEAD_SECDED.static_power_factor == pytest.approx(39 / 32)
        assert OVERHEAD_SECDED.access_energy_factor > 39 / 32

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemeOverhead(scheme=SCHEME_NONE, access_energy_factor=0.9)
        with pytest.raises(ValueError):
            SchemeOverhead(scheme=SCHEME_NONE, cycle_overhead=-0.1)


class TestMitigationPlanner:
    def test_ocean_wins_at_low_frequency(self, calculator):
        """The 290 kHz case: OCEAN's lower voltage beats its overhead."""
        planner = MitigationPlanner(calculator)
        best = planner.best(290e3)
        assert best.name == "OCEAN"

    def test_plans_sorted_by_power(self, calculator):
        plans = MitigationPlanner(calculator).evaluate(290e3)
        powers = [plan.total_power for plan in plans]
        assert powers == sorted(powers)
        assert {plan.name for plan in plans} == {"none", "SECDED", "OCEAN"}

    def test_voltage_ordering_matches_table2(self, calculator):
        plans = {
            p.name: p for p in MitigationPlanner(calculator).evaluate(290e3)
        }
        assert plans["none"].vdd > plans["SECDED"].vdd > plans["OCEAN"].vdd

    def test_high_frequency_compresses_gains(self, calculator):
        """When the performance floor binds, scheme voltages converge
        and the mitigation advantage shrinks (Table 2's 1.96 MHz row
        and the paper's parallelism argument)."""
        planner = MitigationPlanner(calculator)

        def gain(freq):
            plans = {p.name: p for p in planner.evaluate(freq)}
            return plans["none"].total_power / plans["OCEAN"].total_power

        assert gain(100e3) > gain(3e6)

    def test_rejects_empty_schemes(self, calculator):
        with pytest.raises(ValueError):
            MitigationPlanner(calculator, overheads=())
