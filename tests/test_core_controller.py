"""Tests for the run-time monitoring and voltage control loop."""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.core.controller import (
    AdaptiveVoltageController,
    ControllerConfig,
)


def model_monitor(v_onset=0.44, gain=400.0):
    """Deterministic monitor: errors appear below an onset voltage and
    grow linearly — a stylised corrected-error counter."""

    def monitor(vdd: float) -> int:
        if vdd >= v_onset:
            return 0
        return int(gain * (v_onset - vdd)) + 1

    return monitor


def stochastic_monitor(rng, accesses_per_window=5000, width=39):
    """Monitor fed by the Eq. 5 model: Poisson-ish corrected counts."""

    def monitor(vdd: float) -> int:
        p = ACCESS_CELL_BASED_40NM.bit_error_probability(vdd)
        return int(rng.binomial(accesses_per_window * width, p))

    return monitor


class TestConfigValidation:
    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ControllerConfig(v_step=0.0)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            ControllerConfig(v_min=1.0, v_max=0.5)

    def test_rejects_no_hysteresis(self):
        with pytest.raises(ValueError):
            ControllerConfig(raise_threshold=1, lower_threshold=1)

    def test_rejects_initial_out_of_range(self):
        with pytest.raises(ValueError):
            AdaptiveVoltageController(
                model_monitor(), ControllerConfig(), initial_vdd=2.0
            )


class TestControlLaw:
    def test_lowers_voltage_when_clean(self):
        controller = AdaptiveVoltageController(
            lambda v: 0, initial_vdd=0.8
        )
        controller.run(40)
        assert controller.vdd < 0.8

    def test_raises_voltage_under_errors(self):
        controller = AdaptiveVoltageController(
            lambda v: 10, initial_vdd=0.5
        )
        controller.run(10)
        assert controller.vdd == pytest.approx(0.5 + 10 * 0.01)

    def test_converges_just_above_error_onset(self):
        controller = AdaptiveVoltageController(
            model_monitor(v_onset=0.44), initial_vdd=0.9
        )
        controller.run(400)
        assert controller.settled_voltage == pytest.approx(0.44, abs=0.02)

    def test_respects_voltage_rails(self):
        config = ControllerConfig(v_min=0.3, v_max=0.6)
        low = AdaptiveVoltageController(
            lambda v: 0, config, initial_vdd=0.35
        )
        low.run(200)
        assert low.vdd >= 0.3
        high = AdaptiveVoltageController(
            lambda v: 99, config, initial_vdd=0.55
        )
        high.run(200)
        assert high.vdd <= 0.6

    def test_hold_band_between_thresholds(self):
        config = ControllerConfig(raise_threshold=5, lower_threshold=0)
        controller = AdaptiveVoltageController(
            lambda v: 2, config, initial_vdd=0.5
        )
        controller.run(50)
        assert controller.vdd == pytest.approx(0.5)
        assert set(controller.trace.actions) == {"hold"}

    def test_monitor_negative_count_rejected(self):
        controller = AdaptiveVoltageController(
            lambda v: -1, initial_vdd=0.5
        )
        with pytest.raises(ValueError):
            controller.step()

    def test_trace_records_every_window(self):
        controller = AdaptiveVoltageController(
            model_monitor(), initial_vdd=0.6
        )
        trace = controller.run(25)
        assert len(trace) == 25
        assert len(trace.voltages) == len(trace.errors) == 25

    def test_rejects_negative_windows(self):
        controller = AdaptiveVoltageController(
            model_monitor(), initial_vdd=0.6
        )
        with pytest.raises(ValueError):
            controller.run(-1)


class TestLifetimeTracking:
    def test_reconverges_after_aging_drift(self):
        """Section IV: 'the minimal voltage will change over lifetime of
        a product requiring a monitoring and control loop'.  Shift the
        error onset upward mid-run (ageing) and the loop must follow."""
        onset = {"v": 0.40}

        def aging_monitor(vdd: float) -> int:
            return 0 if vdd >= onset["v"] else 25

        controller = AdaptiveVoltageController(
            aging_monitor, initial_vdd=0.7
        )
        controller.run(300)
        before = controller.settled_voltage
        assert before == pytest.approx(0.40, abs=0.02)
        onset["v"] = 0.48  # the part aged: needs more voltage now
        controller.run(300)
        after = controller.settled_voltage
        assert after == pytest.approx(0.48, abs=0.02)

    def test_with_stochastic_eq5_monitor(self):
        """Against the real Eq. 5 statistics the loop settles near the
        voltage where a window sees ~zero corrected errors."""
        rng = np.random.default_rng(0)
        controller = AdaptiveVoltageController(
            stochastic_monitor(rng), initial_vdd=0.9,
            config=ControllerConfig(lower_patience=3),
        )
        controller.run(600)
        settled = controller.settled_voltage
        # Error-visible region starts below ~0.45 V for this window size
        assert 0.38 < settled < 0.50
