"""Unit tests for the minimum-voltage solver — the Table 2 engine."""

import math

import pytest

from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_COMMERCIAL_40NM,
)
from repro.core.fit_solver import (
    FIT_TARGET_PAPER,
    SCHEME_NONE,
    SCHEME_OCEAN,
    SCHEME_SECDED,
    SchemeReliability,
    minimum_voltage,
    solve_paper_schemes,
)
from repro.core.retention import RETENTION_CELL_BASED_40NM


class TestSchemeReliability:
    def test_paper_thresholds(self):
        """Section V: SECDED dies at triple, OCEAN at quintuple errors."""
        assert SCHEME_NONE.fail_threshold == 1
        assert SCHEME_SECDED.fail_threshold == 3
        assert SCHEME_OCEAN.fail_threshold == 5

    def test_secded_word_is_39_bits(self):
        """'(39, 32) SECDED code implementation'."""
        assert SCHEME_SECDED.word_bits == 39

    def test_rejects_threshold_beyond_word(self):
        with pytest.raises(ValueError):
            SchemeReliability(name="bad", word_bits=8, fail_threshold=9)

    def test_failure_probability_ordering(self):
        p_bit = 1e-5
        assert (
            SCHEME_NONE.failure_probability(p_bit)
            > SCHEME_SECDED.failure_probability(p_bit)
            > SCHEME_OCEAN.failure_probability(p_bit)
        )

    def test_max_bit_error_meets_fit(self):
        p = SCHEME_SECDED.max_bit_error(1e-15)
        assert SCHEME_SECDED.failure_probability(p) == pytest.approx(
            1e-15, rel=1e-5
        )


class TestTable2CellBased:
    """The headline reproduction: Table 2's 290 kHz column."""

    def test_no_mitigation_055(self):
        sol = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_NONE)
        assert sol.vdd == pytest.approx(0.55, abs=0.01)

    def test_secded_044(self):
        sol = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_SECDED)
        assert sol.vdd == pytest.approx(0.44, abs=0.01)

    def test_ocean_033(self):
        sol = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_OCEAN)
        assert sol.vdd == pytest.approx(0.33, abs=0.01)

    def test_fit_actually_met_at_solution(self):
        for scheme in (SCHEME_NONE, SCHEME_SECDED, SCHEME_OCEAN):
            sol = minimum_voltage(ACCESS_CELL_BASED_40NM, scheme)
            p_bit = ACCESS_CELL_BASED_40NM.bit_error_probability(sol.vdd)
            assert scheme.failure_probability(p_bit) <= FIT_TARGET_PAPER * 1.01


class TestCommercialMemory:
    """The 11 MHz case of Section V.B uses the commercial memory; the
    paper quotes 0.88 / 0.77 / 0.66 V (snapped to its 0.11 V grid)."""

    def test_no_mitigation_near_088(self):
        sol = minimum_voltage(ACCESS_COMMERCIAL_40NM, SCHEME_NONE)
        assert sol.vdd == pytest.approx(0.85, abs=0.04)

    def test_secded_near_077(self):
        sol = minimum_voltage(ACCESS_COMMERCIAL_40NM, SCHEME_SECDED)
        assert sol.vdd == pytest.approx(0.77, abs=0.04)

    def test_ocean_near_066(self):
        sol = minimum_voltage(ACCESS_COMMERCIAL_40NM, SCHEME_OCEAN)
        assert sol.vdd == pytest.approx(0.66, abs=0.04)

    def test_scheme_ordering(self):
        sols = solve_paper_schemes(ACCESS_COMMERCIAL_40NM)
        assert sols["none"].vdd > sols["SECDED"].vdd > sols["OCEAN"].vdd


class TestConstraintCombination:
    def test_retention_floor_binds_when_access_would_go_lower(self):
        relaxed = SchemeReliability(name="x", word_bits=39, fail_threshold=20)
        sol = minimum_voltage(
            ACCESS_CELL_BASED_40NM,
            relaxed,
            retention_model=RETENTION_CELL_BASED_40NM,
            retention_bits=32 * 1024,
        )
        assert sol.binding == "retention"
        assert sol.vdd > 0.32

    def test_frequency_floor_binds(self):
        """Table 2's 1.96 MHz row: OCEAN moves from 0.33 V to the
        performance floor."""
        sol = minimum_voltage(
            ACCESS_CELL_BASED_40NM, SCHEME_OCEAN, frequency_floor_v=0.44
        )
        assert sol.binding == "frequency"
        assert sol.vdd == pytest.approx(0.44)

    def test_access_floor_recorded_even_when_not_binding(self):
        sol = minimum_voltage(
            ACCESS_CELL_BASED_40NM, SCHEME_OCEAN, frequency_floor_v=0.44
        )
        assert sol.access_floor == pytest.approx(0.33, abs=0.01)

    def test_nan_floors_for_missing_constraints(self):
        sol = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_OCEAN)
        assert math.isnan(sol.retention_floor)
        assert math.isnan(sol.frequency_floor)

    def test_rejects_bad_fit_target(self):
        with pytest.raises(ValueError):
            minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_NONE, fit_target=0.0)


class TestFitTargetSensitivity:
    def test_stricter_fit_needs_more_voltage(self):
        loose = minimum_voltage(
            ACCESS_CELL_BASED_40NM, SCHEME_SECDED, fit_target=1e-9
        )
        strict = minimum_voltage(
            ACCESS_CELL_BASED_40NM, SCHEME_SECDED, fit_target=1e-18
        )
        assert strict.vdd > loose.vdd

    def test_ocean_advantage_grows_with_loose_fit(self):
        """Relaxing the FIT target moves the multi-bit schemes much
        deeper down the power law than the no-mitigation case, so the
        voltage gap between them widens."""

        def gap(fit):
            sols = solve_paper_schemes(ACCESS_CELL_BASED_40NM, fit_target=fit)
            return sols["none"].vdd - sols["OCEAN"].vdd

        assert gap(1e-6) > gap(1e-18)
