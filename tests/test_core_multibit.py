"""Unit tests for the multi-bit error probability math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core.multibit import (
    bit_error_for_word_failure,
    expected_errors,
    prob_at_least,
    prob_exactly,
)


class TestProbExactly:
    def test_matches_scipy_moderate_p(self):
        for k in range(0, 8):
            ours = prob_exactly(39, k, 0.01)
            ref = stats.binom.pmf(k, 39, 0.01)
            assert ours == pytest.approx(ref, rel=1e-10)

    def test_tiny_p_no_underflow(self):
        p = prob_exactly(39, 5, 1e-18)
        # C(39,5) * 1e-90 = 5.76e5 * 1e-90
        assert p == pytest.approx(575757 * 1e-90, rel=1e-6)

    def test_degenerate_p_zero(self):
        assert prob_exactly(39, 0, 0.0) == 1.0
        assert prob_exactly(39, 1, 0.0) == 0.0

    def test_degenerate_p_one(self):
        assert prob_exactly(39, 39, 1.0) == 1.0
        assert prob_exactly(39, 38, 1.0) == 0.0

    def test_k_beyond_n_is_zero(self):
        assert prob_exactly(8, 9, 0.1) == 0.0

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            prob_exactly(39, 1, 1.5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            prob_exactly(0, 0, 0.5)


class TestProbAtLeast:
    def test_matches_scipy_survival(self):
        for k in (1, 2, 3, 5):
            ours = prob_at_least(39, k, 0.02)
            ref = stats.binom.sf(k - 1, 39, 0.02)
            assert ours == pytest.approx(ref, rel=1e-9)

    def test_at_least_zero_is_one(self):
        assert prob_at_least(39, 0, 0.3) == 1.0

    def test_beyond_n_is_zero(self):
        assert prob_at_least(8, 9, 0.3) == 0.0

    def test_small_p_first_term_dominates(self):
        """For n*p << 1 the tail is ~ C(n,k) p^k."""
        p_bit = 1e-8
        tail = prob_at_least(39, 3, p_bit)
        leading = math.comb(39, 3) * p_bit**3
        assert tail == pytest.approx(leading, rel=1e-4)

    def test_monotone_in_p(self):
        probs = [prob_at_least(39, 3, p) for p in (1e-6, 1e-4, 1e-2, 0.1)]
        assert all(b > a for a, b in zip(probs, probs[1:]))

    def test_monotone_in_k(self):
        probs = [prob_at_least(39, k, 0.01) for k in (1, 2, 3, 4, 5)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_scheme_ordering_at_fixed_p(self):
        """No-mitigation fails far more often than SECDED, which fails
        far more often than OCEAN (Section V's failure thresholds)."""
        p_bit = 1e-5
        none = prob_at_least(32, 1, p_bit)
        secded = prob_at_least(39, 3, p_bit)
        ocean = prob_at_least(39, 5, p_bit)
        assert none > 1e4 * secded
        assert secded > 1e4 * ocean

    @given(
        n=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=0, max_value=64),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_is_probability(self, n, k, p):
        assert 0.0 <= prob_at_least(n, k, p) <= 1.0

    @given(
        n=st.integers(min_value=2, max_value=64),
        k=st.integers(min_value=1, max_value=8),
        p=st.floats(min_value=1e-9, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_complement_identity(self, n, k, p):
        """P(>=k) + P(<k) == 1 via exact pmf summation."""
        if k > n:
            return
        below = sum(prob_exactly(n, j, p) for j in range(k))
        assert prob_at_least(n, k, p) + below == pytest.approx(1.0, abs=1e-9)


class TestExpectedErrors:
    def test_linear(self):
        assert expected_errors(39, 0.01) == pytest.approx(0.39)

    def test_zero_p(self):
        assert expected_errors(39, 0.0) == 0.0


class TestInverse:
    def test_round_trip_paper_operating_points(self):
        """The FIT solver inverse at the paper's exact configurations."""
        for n, k in ((32, 1), (39, 3), (39, 5)):
            p_bit = bit_error_for_word_failure(n, k, 1e-15)
            assert prob_at_least(n, k, p_bit) == pytest.approx(1e-15, rel=1e-6)

    def test_round_trip_moderate_targets(self):
        for target in (1e-9, 1e-6, 1e-3):
            p_bit = bit_error_for_word_failure(39, 3, target)
            assert prob_at_least(39, 3, p_bit) == pytest.approx(
                target, rel=1e-6
            )

    def test_higher_threshold_tolerates_more_bit_errors(self):
        """OCEAN's 5-bit threshold admits a vastly higher BER than
        SECDED's 3-bit at the same FIT — the source of its voltage
        advantage in Table 2."""
        secded = bit_error_for_word_failure(39, 3, 1e-15)
        ocean = bit_error_for_word_failure(39, 5, 1e-15)
        assert ocean > 50.0 * secded

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            bit_error_for_word_failure(39, 0, 1e-15)
        with pytest.raises(ValueError):
            bit_error_for_word_failure(39, 40, 1e-15)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            bit_error_for_word_failure(39, 3, 0.0)

    @given(
        n=st.integers(min_value=4, max_value=64),
        k=st.integers(min_value=1, max_value=6),
        exp=st.floats(min_value=-16, max_value=-2),
    )
    @settings(max_examples=60, deadline=None)
    def test_inverse_property(self, n, k, exp):
        if k > n:
            return
        target = 10.0**exp
        p_bit = bit_error_for_word_failure(n, k, target)
        assert prob_at_least(n, k, p_bit) == pytest.approx(target, rel=1e-4)
