"""Unit tests for the Eq. 2-4 noise-margin model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise_margin import NoiseMarginModel


@pytest.fixture
def model():
    # NM = 1.0*V - 0.3 +/- 0.05: mean retention voltage 0.3 V.
    return NoiseMarginModel(c0=1.0, c1=-0.3, sigma=0.05)


class TestConstruction:
    def test_rejects_non_positive_c0(self):
        with pytest.raises(ValueError):
            NoiseMarginModel(c0=0.0, c1=-0.3, sigma=0.05)

    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValueError):
            NoiseMarginModel(c0=1.0, c1=-0.3, sigma=0.0)


class TestEquation2(object):
    def test_mean_margin_linear_in_vdd(self, model):
        assert model.mean_margin(0.5) == pytest.approx(0.2)
        assert model.mean_margin(1.0) == pytest.approx(0.7)

    def test_cell_margin_includes_mismatch(self, model):
        assert model.margin_of_cell(0.5, x=2.0) == pytest.approx(0.3)
        assert model.margin_of_cell(0.5, x=-2.0) == pytest.approx(0.1)


class TestEquation3:
    def test_dvdd_per_sigma_is_constant(self, model):
        """Eq. 3: the voltage/sigma exchange rate is sigma/c0."""
        assert model.dvdd_per_sigma == pytest.approx(0.05)

    def test_exchange_rate_moves_failure_point(self, model):
        """One extra sigma of variability costs dvdd_per_sigma volts at
        any fixed failure probability."""
        wider = NoiseMarginModel(c0=1.0, c1=-0.3, sigma=0.06)
        for p in (1e-9, 1e-6, 1e-3):
            dv = wider.vdd_for_bit_error(p) - model.vdd_for_bit_error(p)
            z = -model.failing_cell_quantile(model.vdd_for_bit_error(p))
            assert dv == pytest.approx(0.01 * z, rel=1e-6)


class TestEquation4:
    def test_half_failure_at_mean_retention_voltage(self, model):
        assert model.bit_error_probability(0.3) == pytest.approx(0.5)

    def test_monotone_decreasing_in_vdd(self, model):
        probs = [model.bit_error_probability(v) for v in (0.2, 0.3, 0.4, 0.5)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_deep_tail_accuracy(self, model):
        """At mean + 8 sigma the error probability is ~6e-16; a naive
        1 - cdf formulation would round it to zero."""
        p = model.bit_error_probability(0.3 + 8 * 0.05)
        assert 1e-16 < p < 1e-15

    def test_rejects_negative_vdd(self, model):
        with pytest.raises(ValueError):
            model.bit_error_probability(-0.1)

    def test_inverse_round_trip(self, model):
        for p in (1e-12, 1e-6, 1e-2, 0.4):
            v = model.vdd_for_bit_error(p)
            assert model.bit_error_probability(v) == pytest.approx(p, rel=1e-6)

    def test_inverse_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.vdd_for_bit_error(0.0)
        with pytest.raises(ValueError):
            model.vdd_for_bit_error(1.0)

    @given(vdd=st.floats(min_value=0.0, max_value=1.3))
    @settings(max_examples=50, deadline=None)
    def test_probability_in_unit_interval(self, vdd):
        model = NoiseMarginModel(c0=1.0, c1=-0.3, sigma=0.05)
        assert 0.0 <= model.bit_error_probability(vdd) <= 1.0


class TestCellMinimumVoltage:
    def test_typical_cell(self, model):
        assert model.cell_minimum_voltage(0.0) == pytest.approx(0.3)

    def test_weak_cell_needs_more_voltage(self, model):
        assert model.cell_minimum_voltage(-3.0) == pytest.approx(0.45)

    def test_strong_cell_clipped_at_zero(self, model):
        assert model.cell_minimum_voltage(+10.0) == 0.0


class TestPaperForm:
    def test_round_trip(self, model):
        d0, d1, d2 = model.to_paper_form()
        rebuilt = NoiseMarginModel.from_paper_form(d0, d1, d2, c0=model.c0)
        for v in (0.2, 0.3, 0.4):
            assert rebuilt.bit_error_probability(v) == pytest.approx(
                model.bit_error_probability(v), rel=1e-9
            )

    def test_d0_negative(self, model):
        d0, _, _ = model.to_paper_form()
        assert d0 < 0.0

    def test_from_paper_form_rejects_positive_d0(self):
        with pytest.raises(ValueError):
            NoiseMarginModel.from_paper_form(0.05, -6.0, 1.0)


class TestFitting:
    def test_recovers_known_model(self, model):
        voltages = np.linspace(0.15, 0.45, 13)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        fitted = NoiseMarginModel.fit(voltages, rates, c0=model.c0)
        assert fitted.c1 == pytest.approx(model.c1, rel=1e-6)
        assert fitted.sigma == pytest.approx(model.sigma, rel=1e-6)

    def test_fit_with_noise_is_close(self, model):
        rng = np.random.default_rng(5)
        voltages = np.linspace(0.15, 0.45, 25)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        noisy = np.clip(rates * rng.lognormal(0.0, 0.1, rates.shape), 0, 1)
        fitted = NoiseMarginModel.fit(voltages, noisy, c0=model.c0)
        assert fitted.sigma == pytest.approx(model.sigma, rel=0.25)

    def test_fit_counts(self, model):
        total = 65536
        voltages = np.linspace(0.2, 0.4, 9)
        counts = np.array(
            [
                round(model.bit_error_probability(float(v)) * total)
                for v in voltages
            ]
        )
        fitted = NoiseMarginModel.fit_counts(voltages, counts, total)
        assert fitted.sigma == pytest.approx(model.sigma, rel=0.1)

    def test_rejects_degenerate_data(self):
        with pytest.raises(ValueError):
            NoiseMarginModel.fit(
                np.array([0.2, 0.3, 0.4]), np.array([0.0, 0.0, 1.0])
            )

    def test_rejects_increasing_ber(self):
        with pytest.raises(ValueError, match="decrease"):
            NoiseMarginModel.fit(
                np.array([0.2, 0.3, 0.4]), np.array([1e-6, 1e-4, 1e-2])
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            NoiseMarginModel.fit(np.array([0.2, 0.3]), np.array([0.1]))
