"""Tests for the parallelism-vs-voltage explorer."""

import pytest

from repro.analysis.experiments import platform_frequency_floor
from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.core.fit_solver import SCHEME_OCEAN, SCHEME_SECDED
from repro.core.parallelism import ParallelismExplorer


@pytest.fixture(scope="module")
def explorer():
    return ParallelismExplorer(
        ACCESS_CELL_BASED_40NM,
        SCHEME_OCEAN,
        platform_frequency_floor,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelismExplorer(
                ACCESS_CELL_BASED_40NM, SCHEME_OCEAN,
                platform_frequency_floor, sync_overhead=-0.1,
            )
        with pytest.raises(ValueError):
            ParallelismExplorer(
                ACCESS_CELL_BASED_40NM, SCHEME_OCEAN,
                platform_frequency_floor, leakage_fraction=1.0,
            )


class TestDesignPoints:
    def test_single_core_is_reference(self, explorer):
        point = explorer.design_point(1.96e6, 1)
        assert point.relative_power == pytest.approx(1.0)
        assert point.relative_area == 1.0

    def test_more_cores_lower_voltage(self, explorer):
        """Splitting a performance-bound workload lets each core slow
        down and ride the reliability limit instead."""
        single = explorer.design_point(1.96e6, 1)
        quad = explorer.design_point(1.96e6, 4)
        assert single.binding == "frequency"
        assert quad.vdd < single.vdd

    def test_voltage_gains_beat_linear_cost(self, explorer):
        """The paper's claim, NTC-tempered: for a frequency-bound
        point, parallel cores at lower voltage cut total power despite
        replication.  Near threshold the frequency-voltage curve is
        steep, so the dividend is real but smaller than the
        super-threshold quadratic intuition suggests."""
        quad = explorer.design_point(1.96e6, 4)
        assert quad.vdd < explorer.design_point(1.96e6, 1).vdd
        assert quad.relative_power < 0.97

    def test_reliability_floor_caps_the_gains(self, explorer):
        """Once every core already sits at the reliability limit,
        more cores only add overhead and leakage."""
        at_floor = explorer.design_point(290e3, 1)
        assert at_floor.binding == "access"
        more = explorer.design_point(290e3, 4)
        assert more.relative_power > 1.0

    def test_validation(self, explorer):
        with pytest.raises(ValueError):
            explorer.design_point(1e6, 0)
        with pytest.raises(ValueError):
            explorer.design_point(0.0, 2)


class TestBestCoreCount:
    def test_frequency_bound_prefers_parallel(self, explorer):
        best = explorer.best_core_count(5e6, max_cores=8)
        assert best.cores > 1
        assert best.relative_power < 0.95

    def test_reliability_bound_prefers_single(self, explorer):
        best = explorer.best_core_count(100e3, max_cores=8)
        assert best.cores == 1

    def test_heavier_sync_overhead_discourages_parallelism(self):
        light = ParallelismExplorer(
            ACCESS_CELL_BASED_40NM, SCHEME_OCEAN,
            platform_frequency_floor, sync_overhead=0.01,
        )
        heavy = ParallelismExplorer(
            ACCESS_CELL_BASED_40NM, SCHEME_OCEAN,
            platform_frequency_floor, sync_overhead=0.5,
        )
        assert (
            heavy.best_core_count(5e6).cores
            <= light.best_core_count(5e6).cores
        )

    def test_works_for_secded_too(self):
        explorer = ParallelismExplorer(
            ACCESS_CELL_BASED_40NM, SCHEME_SECDED,
            platform_frequency_floor,
        )
        best = explorer.best_core_count(20e6, max_cores=8)
        assert best.cores > 1

    def test_validation(self, explorer):
        with pytest.raises(ValueError):
            explorer.best_core_count(1e6, max_cores=0)
