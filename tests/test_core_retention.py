"""Unit tests for the retention model (Figure 4 / Table 1 anchors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise_margin import NoiseMarginModel
from repro.core.retention import (
    RETENTION_CELL_BASED_40NM,
    RETENTION_CELL_BASED_65NM,
    RETENTION_COMMERCIAL_40NM,
    RetentionModel,
)


@pytest.fixture
def model():
    return RetentionModel(v_mean=0.3, v_sigma=0.05)


class TestConstruction:
    def test_rejects_non_positive_sigma(self):
        with pytest.raises(ValueError):
            RetentionModel(v_mean=0.3, v_sigma=0.0)


class TestNoiseMarginEquivalence:
    def test_from_noise_margin(self):
        nm = NoiseMarginModel(c0=2.0, c1=-0.6, sigma=0.1)
        model = RetentionModel.from_noise_margin(nm)
        assert model.v_mean == pytest.approx(0.3)
        assert model.v_sigma == pytest.approx(0.05)

    def test_round_trip_probabilities(self, model):
        nm = model.to_noise_margin(c0=3.0)
        for v in (0.2, 0.3, 0.45):
            assert nm.bit_error_probability(v) == pytest.approx(
                model.bit_error_probability(v), rel=1e-9
            )


class TestBitErrorProbability:
    def test_half_at_mean(self, model):
        assert model.bit_error_probability(0.3) == pytest.approx(0.5)

    def test_decreasing_in_vdd(self, model):
        probs = [model.bit_error_probability(v) for v in (0.1, 0.25, 0.4, 0.6)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_inverse_round_trip(self, model):
        for p in (1e-10, 1e-4, 0.3):
            v = model.vdd_for_bit_error(p)
            assert model.bit_error_probability(v) == pytest.approx(p, rel=1e-6)

    def test_rejects_negative_vdd(self, model):
        with pytest.raises(ValueError):
            model.bit_error_probability(-0.01)


class TestFirstFailureVoltage:
    def test_32kbit_is_about_4_sigma(self, model):
        """The worst of 32768 cells sits near the +4 sigma quantile."""
        v = model.first_failure_voltage(32768)
        assert v == pytest.approx(0.3 + 4.01 * 0.05, abs=0.005)

    def test_larger_memory_fails_earlier(self, model):
        assert model.first_failure_voltage(2**20) > model.first_failure_voltage(
            2**10
        )

    def test_single_bit_is_the_mean(self, model):
        assert model.first_failure_voltage(1) == pytest.approx(0.3)

    def test_rejects_non_positive_bits(self, model):
        with pytest.raises(ValueError):
            model.first_failure_voltage(0)


class TestTable1Anchors:
    """The calibrated populations must land on Table 1's measured rows."""

    def test_commercial_retention_085(self):
        v = RETENTION_COMMERCIAL_40NM.first_failure_voltage(32 * 1024)
        assert v == pytest.approx(0.85, abs=0.02)

    def test_cell_based_retention_032(self):
        v = RETENTION_CELL_BASED_40NM.first_failure_voltage(32 * 1024)
        assert v == pytest.approx(0.32, abs=0.01)

    def test_cell_based_65nm_retention_025(self):
        v = RETENTION_CELL_BASED_65NM.first_failure_voltage(32 * 1024)
        assert v == pytest.approx(0.25, abs=0.01)

    def test_cell_based_far_below_commercial(self):
        """The whole point of Section III: cell-based memories retain at
        much lower voltage than the commercial 6T IP."""
        assert (
            RETENTION_CELL_BASED_40NM.first_failure_voltage(32 * 1024)
            < 0.5 * RETENTION_COMMERCIAL_40NM.first_failure_voltage(32 * 1024)
        )


class TestSampling:
    def test_sample_statistics(self, model):
        rng = np.random.default_rng(9)
        samples = model.sample_cell_voltages(100_000, rng)
        assert samples.mean() == pytest.approx(0.3, abs=0.002)
        assert samples.std() == pytest.approx(0.05, abs=0.002)

    def test_samples_clipped_at_zero(self):
        wide = RetentionModel(v_mean=0.05, v_sigma=0.2)
        samples = wide.sample_cell_voltages(10_000, np.random.default_rng(1))
        assert (samples >= 0.0).all()

    def test_rejects_negative_count(self, model):
        with pytest.raises(ValueError):
            model.sample_cell_voltages(-1, np.random.default_rng(0))


class TestShifted:
    def test_shift_moves_mean_only(self, model):
        shifted = model.shifted(0.04)
        assert shifted.v_mean == pytest.approx(0.34)
        assert shifted.v_sigma == model.v_sigma

    @given(delta=st.floats(min_value=-0.05, max_value=0.05))
    @settings(max_examples=30, deadline=None)
    def test_shift_translates_ber_curve(self, delta):
        model = RetentionModel(v_mean=0.3, v_sigma=0.05)
        shifted = model.shifted(delta)
        assert shifted.bit_error_probability(0.3 + delta) == pytest.approx(
            model.bit_error_probability(0.3), rel=1e-9
        )


class TestFitting:
    def test_recovers_known_population(self, model):
        voltages = np.linspace(0.15, 0.45, 16)
        rates = np.array(
            [model.bit_error_probability(float(v)) for v in voltages]
        )
        fitted = RetentionModel.fit(voltages, rates)
        assert fitted.v_mean == pytest.approx(0.3, abs=1e-6)
        assert fitted.v_sigma == pytest.approx(0.05, abs=1e-6)
