"""Tests for the standby / data-retention management model."""

import pytest

from repro.core.retention import (
    RETENTION_CELL_BASED_40NM,
    RETENTION_COMMERCIAL_40NM,
)
from repro.core.standby import StandbyModel, standby_savings_ratio
from repro.memdev.library import cell_based_imec_40nm, commercial_cots_40nm


@pytest.fixture(scope="module")
def model():
    return StandbyModel(
        retention=RETENTION_CELL_BASED_40NM,
        leakage_power=cell_based_imec_40nm().energy.leakage_power,
        total_words=1024,
        word_bits=39,
        correctable_bits=1,
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            StandbyModel(
                RETENTION_CELL_BASED_40NM, lambda v: 1e-6, total_words=0
            )
        with pytest.raises(ValueError):
            StandbyModel(
                RETENTION_CELL_BASED_40NM, lambda v: 1e-6,
                correctable_bits=-1,
            )


class TestFailureStatistics:
    def test_upset_probability_halves_retention_ber(self, model):
        vdd = 0.25
        assert model.cell_upset_probability(vdd) == pytest.approx(
            0.5 * RETENTION_CELL_BASED_40NM.bit_error_probability(vdd)
        )

    def test_word_loss_monotone_decreasing_in_vdd(self, model):
        probs = [model.word_loss_probability(v) for v in (0.2, 0.25, 0.3, 0.35)]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_memory_loss_above_word_loss(self, model):
        vdd = 0.26
        assert model.memory_loss_probability(vdd) > (
            model.word_loss_probability(vdd)
        )

    def test_stronger_ecc_tolerates_lower_voltage(self):
        weak = StandbyModel(
            RETENTION_CELL_BASED_40NM, lambda v: 1e-6 * v,
            correctable_bits=0,
        )
        strong = StandbyModel(
            RETENTION_CELL_BASED_40NM, lambda v: 1e-6 * v,
            correctable_bits=4, word_bits=56,
        )
        v_weak = weak.optimal_retention_voltage(1.0).retention_vdd
        v_strong = strong.optimal_retention_voltage(1.0).retention_vdd
        assert v_strong < v_weak


class TestEvaluate:
    def test_energy_scales_with_duration(self, model):
        one = model.evaluate(0.35, 1.0)
        ten = model.evaluate(0.35, 10.0)
        assert ten.standby_energy_j == pytest.approx(
            10.0 * one.standby_energy_j
        )

    def test_safe_point_flag(self, model):
        assert model.evaluate(0.40, 1.0).data_safe
        assert not model.evaluate(0.20, 1.0).data_safe

    def test_rejects_bad_duration(self, model):
        with pytest.raises(ValueError):
            model.evaluate(0.35, 0.0)


class TestOptimalRetentionVoltage:
    def test_budget_met_and_tight(self, model):
        plan = model.optimal_retention_voltage(60.0, loss_budget=1e-9)
        assert model.memory_loss_probability(plan.retention_vdd) <= 1e-9
        # 5 mV lower would blow the budget (the solution is tight).
        assert model.memory_loss_probability(
            plan.retention_vdd - 0.005
        ) > 1e-9

    def test_optimum_above_population_mean(self, model):
        plan = model.optimal_retention_voltage(60.0)
        assert plan.retention_vdd > RETENTION_CELL_BASED_40NM.v_mean

    def test_looser_budget_allows_lower_voltage(self, model):
        tight = model.optimal_retention_voltage(1.0, loss_budget=1e-12)
        loose = model.optimal_retention_voltage(1.0, loss_budget=1e-3)
        assert loose.retention_vdd < tight.retention_vdd

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.optimal_retention_voltage(1.0, loss_budget=0.0)


class TestPaperClaims:
    def test_10x_static_power_claim(self, model):
        """Section II: supply voltage scaling in standby 'is a leverage
        achieving up to 10x better static power'."""
        ratio = standby_savings_ratio(model, vdd_nominal=1.1, standby_s=1.0)
        assert ratio > 10.0

    def test_commercial_memory_saves_less(self):
        """The commercial 6T population retains so poorly that its safe
        standby voltage is much higher — another face of the memory
        bottleneck."""
        commercial = StandbyModel(
            retention=RETENTION_COMMERCIAL_40NM,
            leakage_power=commercial_cots_40nm().energy.leakage_power,
            total_words=1024,
            word_bits=39,
            correctable_bits=1,
        )
        cell_based = StandbyModel(
            retention=RETENTION_CELL_BASED_40NM,
            leakage_power=cell_based_imec_40nm().energy.leakage_power,
            total_words=1024,
            word_bits=39,
            correctable_bits=1,
        )
        v_com = commercial.optimal_retention_voltage(1.0).retention_vdd
        v_cb = cell_based.optimal_retention_voltage(1.0).retention_vdd
        assert v_com > v_cb + 0.2
