"""Tests for the die-yield / adaptive-voltage dividend model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.yield_model import (
    VminPopulation,
    population_from_access_spread,
)


@pytest.fixture
def population():
    return VminPopulation(v_mean=0.44, v_sigma=0.02)


class TestConstruction:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            VminPopulation(v_mean=0.4, v_sigma=0.0)

    def test_from_samples(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(0.44, 0.02, size=4000)
        fitted = VminPopulation.from_samples(samples)
        assert fitted.v_mean == pytest.approx(0.44, abs=0.002)
        assert fitted.v_sigma == pytest.approx(0.02, rel=0.05)

    def test_from_samples_needs_two(self):
        with pytest.raises(ValueError):
            VminPopulation.from_samples(np.array([0.4]))

    def test_from_access_spread(self):
        pop = population_from_access_spread(0.55, 0.015, fit_margin_v=-0.11)
        assert pop.v_mean == pytest.approx(0.44)
        assert pop.v_sigma == pytest.approx(0.015)


class TestYield:
    def test_half_yield_at_mean(self, population):
        assert population.yield_at(0.44) == pytest.approx(0.5)

    def test_monotone(self, population):
        yields = [population.yield_at(v) for v in (0.40, 0.44, 0.48, 0.52)]
        assert all(b > a for a, b in zip(yields, yields[1:]))

    def test_voltage_for_yield_round_trip(self, population):
        for target in (0.5, 0.99, 0.9999):
            v = population.voltage_for_yield(target)
            assert population.yield_at(v) == pytest.approx(target, rel=1e-6)

    def test_four_nines_is_about_3_7_sigma(self, population):
        v = population.voltage_for_yield(0.9999)
        assert v == pytest.approx(0.44 + 3.72 * 0.02, abs=0.002)

    def test_validation(self, population):
        with pytest.raises(ValueError):
            population.yield_at(-0.1)
        with pytest.raises(ValueError):
            population.voltage_for_yield(1.0)

    @given(vdd=st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=50, deadline=None)
    def test_yield_is_probability(self, vdd):
        population = VminPopulation(v_mean=0.44, v_sigma=0.02)
        assert 0.0 <= population.yield_at(vdd) <= 1.0


class TestAdaptiveDividend:
    def test_static_voltage_stacks_guardband(self, population):
        v = population.static_voltage(target_yield=0.9999, guardband_v=0.05)
        assert v == pytest.approx(
            population.voltage_for_yield(0.9999) + 0.05
        )

    def test_dividend_exceeds_one(self, population):
        """Static worst-case always burns more than monitored parts."""
        assert population.adaptive_power_dividend() > 1.0

    def test_dividend_grows_with_spread(self):
        tight = VminPopulation(v_mean=0.44, v_sigma=0.01)
        wide = VminPopulation(v_mean=0.44, v_sigma=0.04)
        assert (
            wide.adaptive_power_dividend()
            > tight.adaptive_power_dividend()
        )

    def test_dividend_magnitude_realistic(self, population):
        """~125 mV of stacked margin on a 0.46 V mean: ~1.5x dynamic
        power — the monitoring loop's dividend at a Table 2 point."""
        dividend = population.adaptive_power_dividend(
            target_yield=0.9999, guardband_v=0.05, margin_v=0.02
        )
        assert 1.3 < dividend < 1.8

    def test_validation(self, population):
        with pytest.raises(ValueError):
            population.static_voltage(guardband_v=-0.01)
        with pytest.raises(ValueError):
            population.mean_adaptive_voltage(margin_v=-0.01)
