"""Tests for the codec base abstractions and cross-codec invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import Codec, DecodeResult, DecodeStatus
from repro.ecc.bch import BchCodec
from repro.ecc.hamming import SecdedCodec
from repro.ecc.interleave import InterleavedCodec
from repro.ecc.parity import ParityCodec

ALL_CODECS = [
    ParityCodec(32),
    SecdedCodec(),
    BchCodec(data_bits=32, t=1),
    BchCodec(data_bits=32, t=2),
    BchCodec(data_bits=32, t=4),
    InterleavedCodec(SecdedCodec(), 4),
]


class TestDecodeResult:
    def test_ok_semantics(self):
        assert DecodeResult(1, DecodeStatus.CLEAN).ok
        assert DecodeResult(1, DecodeStatus.CORRECTED, 1).ok
        assert not DecodeResult(1, DecodeStatus.DETECTED).ok


class TestCodecProperties:
    @pytest.mark.parametrize(
        "codec", ALL_CODECS, ids=lambda c: type(c).__name__ + str(c.code_bits)
    )
    def test_geometry_consistent(self, codec):
        assert codec.code_bits > codec.data_bits > 0
        assert codec.check_bits == codec.code_bits - codec.data_bits
        assert codec.storage_overhead == pytest.approx(
            codec.check_bits / codec.data_bits
        )

    @pytest.mark.parametrize(
        "codec", ALL_CODECS, ids=lambda c: type(c).__name__ + str(c.code_bits)
    )
    def test_round_trip_edges(self, codec):
        for data in (0, 1, (1 << codec.data_bits) - 1):
            result = codec.decode(codec.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    @pytest.mark.parametrize(
        "codec", ALL_CODECS, ids=lambda c: type(c).__name__ + str(c.code_bits)
    )
    def test_input_validation(self, codec):
        with pytest.raises(ValueError):
            codec.encode(-1)
        with pytest.raises(ValueError):
            codec.encode(1 << codec.data_bits)
        with pytest.raises(ValueError):
            codec.decode(1 << codec.code_bits)

    @given(data=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_single_flip_never_silently_wrong(self, data):
        """Universal distance >= 2 property: one flip is never decoded
        CLEAN with wrong data by any codec in the library."""
        for codec in ALL_CODECS:
            if codec.data_bits != 32:
                continue
            codeword = codec.encode(data)
            corrupted = codeword ^ 1
            result = codec.decode(corrupted)
            if result.status is DecodeStatus.CLEAN:
                pytest.fail(f"{type(codec).__name__} missed a single flip")
            if result.status is DecodeStatus.CORRECTED:
                assert result.data == data


class TestAbstractBase:
    def test_codec_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            Codec()
