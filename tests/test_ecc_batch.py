"""Batch codec kernels must agree word-for-word with the scalar paths.

The vectorized ``encode_batch``/``decode_batch`` implementations are
pure reimplementations of the scalar codecs, so the contract is exact
equality: same codewords, same decoded data, same status per word —
over random inputs and over exhaustive small error patterns.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import (
    BatchDecodeResult,
    BchCodec,
    ParityCodec,
    SecdedCodec,
    status_code,
)
from repro.ecc.base import Codec, DecodeStatus


def scalar_encode(codec, words):
    return np.array([codec.encode(int(w)) for w in words], dtype=np.uint64)


def scalar_decode(codec, codewords):
    results = [codec.decode(int(cw)) for cw in codewords]
    return (
        np.array([r.data for r in results], dtype=np.uint64),
        np.array([status_code(r.status) for r in results], dtype=np.uint8),
        np.array([r.corrected_bits for r in results], dtype=np.int64),
    )


def assert_batch_matches_scalar(codec, codewords):
    batch = codec.decode_batch(codewords)
    data, status, corrected = scalar_decode(codec, codewords)
    np.testing.assert_array_equal(batch.data, data)
    np.testing.assert_array_equal(batch.status, status)
    np.testing.assert_array_equal(batch.corrected_bits, corrected)


@pytest.fixture(scope="module", params=[SecdedCodec, BchCodec, ParityCodec])
def codec(request):
    return request.param()


class TestEncodeBatch:
    def test_matches_scalar_on_random_words(self, codec):
        rng = np.random.default_rng(1)
        words = rng.integers(
            0, 1 << codec.data_bits, size=4096, dtype=np.uint64
        )
        np.testing.assert_array_equal(
            codec.encode_batch(words), scalar_encode(codec, words)
        )

    def test_matches_scalar_on_boundary_words(self, codec):
        words = np.array(
            [0, 1, (1 << codec.data_bits) - 1, 0xDEADBEEF & ((1 << codec.data_bits) - 1)],
            dtype=np.uint64,
        )
        np.testing.assert_array_equal(
            codec.encode_batch(words), scalar_encode(codec, words)
        )

    def test_rejects_oversized_words(self, codec):
        with pytest.raises(ValueError):
            codec.encode_batch(np.array([1 << codec.data_bits], dtype=np.uint64))

    def test_accepts_plain_lists(self, codec):
        assert codec.encode_batch([0, 1, 2]).dtype == np.uint64

    @given(words=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=64
    ))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_scalar(self, codec, words):
        arr = np.array(words, dtype=np.uint64)
        np.testing.assert_array_equal(
            codec.encode_batch(arr), scalar_encode(codec, arr)
        )


class TestDecodeBatch:
    def test_clean_round_trip(self, codec):
        rng = np.random.default_rng(2)
        words = rng.integers(
            0, 1 << codec.data_bits, size=2048, dtype=np.uint64
        )
        batch = codec.decode_batch(codec.encode_batch(words))
        np.testing.assert_array_equal(batch.data, words)
        assert bool(batch.ok.all())

    def test_matches_scalar_on_random_corruption(self, codec):
        rng = np.random.default_rng(3)
        words = rng.integers(
            0, 1 << codec.data_bits, size=2048, dtype=np.uint64
        )
        codewords = codec.encode_batch(words)
        # Flip 0..3 random bits per word — spans clean, correctable and
        # detected outcomes for every codec under test.
        n_flips = rng.integers(0, 4, size=codewords.size)
        for i, k in enumerate(n_flips):
            for bit in rng.choice(codec.code_bits, size=int(k), replace=False):
                codewords[i] ^= np.uint64(1) << np.uint64(bit)
        assert_batch_matches_scalar(codec, codewords)


class TestSecdedExhaustivePatterns:
    def test_all_single_and_double_error_patterns(self):
        """Every <= 2-bit pattern on one codeword, batch vs scalar."""
        codec = SecdedCodec()
        base = codec.encode(0xCAFEF00D)
        patterns = [0]
        patterns += [1 << i for i in range(39)]
        patterns += [
            (1 << i) | (1 << j)
            for i, j in itertools.combinations(range(39), 2)
        ]
        codewords = np.uint64(base) ^ np.array(patterns, dtype=np.uint64)
        assert_batch_matches_scalar(codec, codewords)

    def test_single_errors_on_many_random_words(self):
        codec = SecdedCodec()
        rng = np.random.default_rng(4)
        words = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
        codewords = codec.encode_batch(words)
        positions = rng.integers(0, 39, size=500).astype(np.uint64)
        batch = codec.decode_batch(codewords ^ (np.uint64(1) << positions))
        np.testing.assert_array_equal(batch.data, words)
        assert int(batch.corrected_bits.sum()) == 500


class TestBchPatterns:
    def test_patterns_up_to_correction_capability(self):
        codec = BchCodec()
        rng = np.random.default_rng(5)
        words = rng.integers(0, 1 << 32, size=64, dtype=np.uint64)
        codewords = codec.encode_batch(words)
        for k in range(1, codec.t + 1):
            corrupted = codewords.copy()
            for i in range(corrupted.size):
                for bit in rng.choice(codec.code_bits, size=k, replace=False):
                    corrupted[i] ^= np.uint64(1) << np.uint64(bit)
            batch = codec.decode_batch(corrupted)
            np.testing.assert_array_equal(batch.data, words, err_msg=f"k={k}")
            np.testing.assert_array_equal(batch.corrected_bits, k)


class TestBatchResultApi:
    def test_getitem_recovers_scalar_results(self):
        codec = SecdedCodec()
        codewords = codec.encode_batch(np.arange(8, dtype=np.uint64))
        batch = codec.decode_batch(codewords)
        assert len(batch) == 8
        single = batch[3]
        assert single.status is DecodeStatus.CLEAN
        assert single.data == 3

    def test_base_class_fallback_loops_are_used(self):
        """A codec that overrides nothing still gets working batch
        methods from the ``Codec`` base."""

        class IdentityCodec(Codec):
            name = "identity"
            data_bits = 8
            code_bits = 8

            def encode(self, data):
                self._check_data(data)
                return data

            def decode(self, codeword):
                self._check_codeword(codeword)
                from repro.ecc.base import DecodeResult
                return DecodeResult(
                    data=codeword, status=DecodeStatus.CLEAN, corrected_bits=0
                )

        codec = IdentityCodec()
        words = np.arange(16, dtype=np.uint64)
        np.testing.assert_array_equal(codec.encode_batch(words), words)
        batch = codec.decode_batch(words)
        assert isinstance(batch, BatchDecodeResult)
        np.testing.assert_array_equal(batch.data, words)
