"""Tests for the shortened BCH codec (OCEAN's protected buffer)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.bch import BchCodec


@pytest.fixture(scope="module")
def codec():
    return BchCodec(data_bits=32, t=4)


class TestConstruction:
    def test_quadruple_corrector_geometry(self, codec):
        """BCH(63,39) t=4 shortened to (56,32): 24 check bits."""
        assert codec.data_bits == 32
        assert codec.code_bits == 56
        assert codec.check_bits == 24
        assert codec.shortened == 7

    def test_generator_degree_matches_check_bits(self, codec):
        assert codec.generator.bit_length() - 1 == 24

    def test_t1_is_hamming_sized(self):
        """t=1 BCH over GF(2^6) needs exactly 6 check bits."""
        assert BchCodec(data_bits=32, t=1).check_bits == 6

    def test_check_bits_grow_with_t(self):
        widths = [BchCodec(data_bits=32, t=t).check_bits for t in (1, 2, 3, 4)]
        assert all(b > a for a, b in zip(widths, widths[1:]))

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError, match="dimension"):
            BchCodec(data_bits=40, t=4)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            BchCodec(data_bits=32, t=0)


class TestEncode:
    def test_systematic(self, codec):
        """Data occupies the top bits of the codeword unchanged."""
        data = 0xCAFEBABE
        assert codec.encode(data) >> codec.check_bits == data

    def test_codeword_divisible_by_generator(self, codec):
        from repro.ecc.bch import _gf2_poly_mod

        rng = random.Random(0)
        for _ in range(100):
            codeword = codec.encode(rng.getrandbits(32))
            assert _gf2_poly_mod(codeword, codec.generator) == 0

    def test_rejects_oversized_data(self, codec):
        with pytest.raises(ValueError):
            codec.encode(1 << 32)


class TestDecode:
    @given(data=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_clean_round_trip(self, data):
        codec = BchCodec(data_bits=32, t=4)
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data

    @pytest.mark.parametrize("n_errors", [1, 2, 3, 4])
    def test_corrects_up_to_t_random_errors(self, codec, n_errors):
        rng = random.Random(n_errors)
        for _ in range(100):
            data = rng.getrandbits(32)
            corrupted = codec.encode(data)
            for position in rng.sample(range(codec.code_bits), n_errors):
                corrupted ^= 1 << position
            result = codec.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data
            assert result.corrected_bits == n_errors

    def test_corrects_worst_case_burst(self, codec):
        """Four adjacent flips at every offset."""
        data = 0xA5A5A5A5
        codeword = codec.encode(data)
        for start in range(codec.code_bits - 3):
            result = codec.decode(codeword ^ (0b1111 << start))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    @given(
        data=st.integers(min_value=0, max_value=2**32 - 1),
        positions=st.sets(
            st.integers(min_value=0, max_value=55), min_size=4, max_size=4
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_quadruple_correction_property(self, data, positions):
        codec = BchCodec(data_bits=32, t=4)
        corrupted = codec.encode(data)
        for position in positions:
            corrupted ^= 1 << position
        result = codec.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    def test_five_errors_never_silently_wrong_with_clean_status(self, codec):
        """Beyond-t patterns must end up DETECTED or (rarely) alias to a
        miscorrection; they must never decode CLEAN."""
        rng = random.Random(9)
        outcomes = {"detected": 0, "miscorrected": 0}
        for _ in range(200):
            data = rng.getrandbits(32)
            corrupted = codec.encode(data)
            for position in rng.sample(range(codec.code_bits), 5):
                corrupted ^= 1 << position
            result = codec.decode(corrupted)
            assert result.status is not DecodeStatus.CLEAN
            if result.status is DecodeStatus.DETECTED:
                outcomes["detected"] += 1
            else:
                outcomes["miscorrected"] += 1
        # A t=4 decoder flags the clear majority of 5-error patterns.
        assert outcomes["detected"] > outcomes["miscorrected"]

    def test_lower_t_variants_correct_their_t(self):
        rng = random.Random(4)
        for t in (1, 2, 3):
            codec = BchCodec(data_bits=32, t=t)
            for _ in range(50):
                data = rng.getrandbits(32)
                corrupted = codec.encode(data)
                for position in rng.sample(range(codec.code_bits), t):
                    corrupted ^= 1 << position
                result = codec.decode(corrupted)
                assert result.status is DecodeStatus.CORRECTED
                assert result.data == data
