"""Tests for GF(2) linear algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf2 import (
    as_gf2,
    bits_to_int,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    is_codeword,
    matmul,
    null_space,
    rank,
    row_reduce,
)


class TestBitConversion:
    @given(value=st.integers(min_value=0, max_value=2**40 - 1))
    @settings(max_examples=100, deadline=None)
    def test_round_trip(self, value):
        assert bits_to_int(int_to_bits(value, 40)) == value

    def test_little_endian(self):
        np.testing.assert_array_equal(int_to_bits(0b110, 4), [0, 1, 1, 0])

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)


class TestRank:
    def test_identity_full_rank(self):
        assert rank(np.eye(5, dtype=np.uint8)) == 5

    def test_duplicate_rows_collapse(self):
        m = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]])
        assert rank(m) == 2

    def test_zero_matrix(self):
        assert rank(np.zeros((3, 4), dtype=np.uint8)) == 0

    def test_gf2_specific_rank(self):
        """Rows sum to zero mod 2 => deficient over GF(2) though full
        rank over the reals."""
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert rank(m) == 2
        assert np.linalg.matrix_rank(m.astype(float)) == 3


class TestRowReduce:
    def test_pivots_identify_identity(self):
        m = np.array([[1, 0, 1], [0, 1, 1]])
        reduced, pivots = row_reduce(m)
        assert pivots == [0, 1]
        np.testing.assert_array_equal(reduced, m)


class TestNullSpace:
    @given(
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_null_space_vectors_annihilate(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(rows, cols)).astype(np.uint8)
        basis = null_space(m)
        for vec in basis:
            assert not matmul(m, vec.reshape(-1, 1)).any()

    def test_rank_nullity(self):
        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(4, 9)).astype(np.uint8)
        assert rank(m) + null_space(m).shape[0] == 9

    def test_full_rank_square_has_trivial_null_space(self):
        assert null_space(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestIsCodeword:
    def test_null_space_vectors_are_codewords(self):
        rng = np.random.default_rng(3)
        h = rng.integers(0, 2, size=(3, 7)).astype(np.uint8)
        for vec in null_space(h):
            assert is_codeword(h, vec)

    def test_non_codeword_rejected(self):
        h = np.array([[1, 1, 0], [0, 1, 1]])
        assert not is_codeword(h, np.array([1, 0, 0]))


class TestHammingMetrics:
    def test_weight(self):
        assert hamming_weight(0b1011) == 3
        assert hamming_weight(0) == 0

    def test_weight_rejects_negative(self):
        with pytest.raises(ValueError):
            hamming_weight(-1)

    def test_distance(self):
        assert hamming_distance(0b1100, 0b1010) == 2
        assert hamming_distance(5, 5) == 0

    @given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_distance_symmetry(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)

    @given(
        a=st.integers(0, 2**16 - 1),
        b=st.integers(0, 2**16 - 1),
        c=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(
            a, b
        ) + hamming_distance(b, c)


class TestAsGf2:
    def test_reduces_mod_2(self):
        np.testing.assert_array_equal(as_gf2(np.array([2, 3, 4])), [0, 1, 0])
