"""Tests for GF(2^m) field arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.gf2m import GF2m, get_field


@pytest.fixture(scope="module")
def gf64():
    return get_field(6)


class TestConstruction:
    def test_default_fields_build(self):
        for m in (3, 4, 5, 6, 7, 8):
            field = GF2m(m)
            assert field.order == 1 << m

    def test_rejects_unknown_degree_without_poly(self):
        with pytest.raises(ValueError, match="primitive"):
            GF2m(12)

    def test_rejects_wrong_degree_poly(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(6, primitive_poly=0b1011)

    def test_rejects_non_primitive_poly(self):
        # x^6 + x^3 + 1 is irreducible but NOT primitive over GF(2^6)
        # (its roots have order 9); x^6+x^5+x^4+x^3+x^2+x+1 = (x^7-1)/(x-1)
        # has roots of order 7.
        with pytest.raises(ValueError, match="not primitive"):
            GF2m(6, primitive_poly=0b1001001)

    def test_get_field_is_cached(self):
        assert get_field(6) is get_field(6)


class TestFieldAxioms:
    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_commutative(self, a, b):
        field = get_field(6)
        assert field.mul(a, b) == field.mul(b, a)

    @given(a=st.integers(0, 63), b=st.integers(0, 63), c=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_multiplication_associative(self, a, b, c):
        field = get_field(6)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(a=st.integers(0, 63), b=st.integers(0, 63), c=st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_distributive(self, a, b, c):
        field = get_field(6)
        left = field.mul(a, field.add(b, c))
        right = field.add(field.mul(a, b), field.mul(a, c))
        assert left == right

    @given(a=st.integers(1, 63))
    @settings(max_examples=63, deadline=None)
    def test_inverse(self, a):
        field = get_field(6)
        assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, gf64):
        with pytest.raises(ZeroDivisionError):
            gf64.inv(0)

    def test_one_is_multiplicative_identity(self, gf64):
        for a in range(64):
            assert gf64.mul(a, 1) == a

    def test_zero_annihilates(self, gf64):
        for a in range(64):
            assert gf64.mul(a, 0) == 0

    def test_addition_is_self_inverse(self, gf64):
        for a in range(64):
            assert gf64.add(a, a) == 0


class TestPowers:
    def test_alpha_generates_all_nonzero_elements(self, gf64):
        generated = {gf64.alpha_pow(i) for i in range(63)}
        assert generated == set(range(1, 64))

    def test_alpha_order_63(self, gf64):
        assert gf64.alpha_pow(63) == 1

    def test_negative_exponent(self, gf64):
        a = gf64.alpha_pow(5)
        assert gf64.mul(a, gf64.alpha_pow(-5)) == 1

    def test_pow_matches_repeated_mul(self, gf64):
        a = 37
        acc = 1
        for exponent in range(10):
            assert gf64.pow(a, exponent) == acc
            acc = gf64.mul(acc, a)

    def test_pow_of_zero(self, gf64):
        assert gf64.pow(0, 0) == 1
        assert gf64.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf64.pow(0, -1)


class TestPolynomials:
    def test_eval_constant(self, gf64):
        assert gf64.poly_eval([7], 13) == 7

    def test_eval_linear(self, gf64):
        # p(x) = 3 + 2x at x=5: 3 + mul(2,5)
        assert gf64.poly_eval([3, 2], 5) == gf64.add(3, gf64.mul(2, 5))

    def test_poly_mul_degrees_add(self, gf64):
        a = [1, 2, 3]
        b = [4, 5]
        assert len(gf64.poly_mul(a, b)) == 4

    def test_poly_trim(self):
        assert GF2m.poly_trim([1, 2, 0, 0]) == [1, 2]
        assert GF2m.poly_trim([0, 0]) == [0]

    def test_minimal_polynomial_of_alpha(self, gf64):
        """alpha's minimal polynomial is the primitive polynomial."""
        poly = gf64.minimal_polynomial(gf64.alpha_pow(1))
        packed = sum(coeff << i for i, coeff in enumerate(poly))
        assert packed == gf64.poly

    def test_minimal_polynomial_annihilates_conjugates(self, gf64):
        element = gf64.alpha_pow(5)
        poly = gf64.minimal_polynomial(element)
        current = element
        for _ in range(6):
            assert gf64.poly_eval(poly, current) == 0
            current = gf64.mul(current, current)

    def test_minimal_polynomial_of_one(self, gf64):
        assert gf64.minimal_polynomial(1) == [1, 1]  # x + 1

    def test_minimal_polynomial_of_zero(self, gf64):
        assert gf64.minimal_polynomial(0) == [0, 1]  # x
