"""Exhaustive and property tests for the (39,32) SECDED codec."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.gf2 import hamming_distance
from repro.ecc.hamming import SecdedCodec


@pytest.fixture(scope="module")
def codec():
    return SecdedCodec()


class TestShape:
    def test_paper_geometry(self, codec):
        assert codec.data_bits == 32
        assert codec.code_bits == 39
        assert codec.check_bits == 7

    def test_storage_overhead(self, codec):
        assert codec.storage_overhead == pytest.approx(7.0 / 32.0)


class TestEncode:
    def test_rejects_oversized_data(self, codec):
        with pytest.raises(ValueError):
            codec.encode(1 << 32)

    def test_rejects_negative_data(self, codec):
        with pytest.raises(ValueError):
            codec.encode(-1)

    def test_zero_encodes_to_zero(self, codec):
        assert codec.encode(0) == 0

    def test_encoding_is_injective_on_sample(self, codec):
        rng = random.Random(1)
        words = {rng.getrandbits(32) for _ in range(2000)}
        codewords = {codec.encode(w) for w in words}
        assert len(codewords) == len(words)

    def test_minimum_distance_is_four(self, codec):
        """SECDED requires d_min >= 4; check on a sample of pairs plus
        all single-data-bit differences."""
        rng = random.Random(2)
        base = codec.encode(0)
        for i in range(32):
            other = codec.encode(1 << i)
            assert hamming_distance(base, other) >= 4
        for _ in range(500):
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            if a == b:
                continue
            assert hamming_distance(codec.encode(a), codec.encode(b)) >= 4


class TestDecode:
    def test_rejects_oversized_codeword(self, codec):
        with pytest.raises(ValueError):
            codec.decode(1 << 39)

    @given(data=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_clean_round_trip(self, data):
        codec = SecdedCodec()
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data
        assert result.corrected_bits == 0

    @given(
        data=st.integers(min_value=0, max_value=2**32 - 1),
        position=st.integers(min_value=0, max_value=38),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_single_error_corrected(self, data, position):
        codec = SecdedCodec()
        corrupted = codec.encode(data) ^ (1 << position)
        result = codec.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data
        assert result.corrected_bits == 1

    def test_all_39_single_error_positions_exhaustively(self, codec):
        data = 0xDEADBEEF
        codeword = codec.encode(data)
        for position in range(39):
            result = codec.decode(codeword ^ (1 << position))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    def test_all_double_errors_detected_exhaustively(self, codec):
        """Every C(39,2) = 741 double-error pattern must be DETECTED,
        never miscorrected."""
        codeword = codec.encode(0x12345678)
        for i, j in itertools.combinations(range(39), 2):
            result = codec.decode(codeword ^ (1 << i) ^ (1 << j))
            assert result.status is DecodeStatus.DETECTED, (i, j)

    @given(
        data=st.integers(min_value=0, max_value=2**32 - 1),
        positions=st.sets(
            st.integers(min_value=0, max_value=38), min_size=2, max_size=2
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_double_errors_detected_property(self, data, positions):
        codec = SecdedCodec()
        corrupted = codec.encode(data)
        for position in positions:
            corrupted ^= 1 << position
        assert codec.decode(corrupted).status is DecodeStatus.DETECTED

    def test_triple_errors_are_the_failure_mode(self, codec):
        """Section V: 'a triple-bit error would lead to system failure'.
        Triple errors either miscorrect (silently wrong data) or alias;
        they are never flagged as simple CORRECTED-with-right-data."""
        rng = random.Random(3)
        miscorrections = 0
        trials = 300
        for _ in range(trials):
            data = rng.getrandbits(32)
            corrupted = codec.encode(data)
            for position in rng.sample(range(39), 3):
                corrupted ^= 1 << position
            result = codec.decode(corrupted)
            if result.status is DecodeStatus.CORRECTED and result.data != data:
                miscorrections += 1
        # The dominant outcome for triple errors is a wrong "correction".
        assert miscorrections > trials // 2
