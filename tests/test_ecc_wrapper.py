"""Tests for parity, interleaving and the codec memory wrapper."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc.base import DecodeStatus
from repro.ecc.bch import BchCodec
from repro.ecc.hamming import SecdedCodec
from repro.ecc.interleave import InterleavedCodec
from repro.ecc.parity import ParityCodec
from repro.ecc.wrapper import CodecMemoryWrapper, UncorrectableError


class DictStore:
    """Trivial raw word store for wrapper tests."""

    def __init__(self):
        self.words = {}

    def read(self, address):
        return self.words.get(address, 0)

    def write(self, address, value):
        self.words[address] = value


class TestParity:
    def test_round_trip(self):
        codec = ParityCodec(32)
        for data in (0, 1, 0xFFFFFFFF, 0x12345678):
            result = codec.decode(codec.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    @given(
        data=st.integers(min_value=0, max_value=2**32 - 1),
        position=st.integers(min_value=0, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_detects_any_single_flip(self, data, position):
        codec = ParityCodec(32)
        corrupted = codec.encode(data) ^ (1 << position)
        assert codec.decode(corrupted).status is DecodeStatus.DETECTED

    def test_misses_double_flips(self):
        """Known blind spot: even-weight patterns pass."""
        codec = ParityCodec(32)
        corrupted = codec.encode(0xABCD) ^ 0b11
        assert codec.decode(corrupted).status is DecodeStatus.CLEAN

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ParityCodec(0)


class TestInterleaved:
    def test_geometry(self):
        codec = InterleavedCodec(SecdedCodec(), 4)
        assert codec.data_bits == 128
        assert codec.code_bits == 156

    def test_rejects_single_way(self):
        with pytest.raises(ValueError):
            InterleavedCodec(SecdedCodec(), 1)

    @given(data=st.integers(min_value=0, max_value=2**128 - 1))
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, data):
        codec = InterleavedCodec(SecdedCodec(), 4)
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.CLEAN
        assert result.data == data

    def test_corrects_any_4_bit_burst(self):
        codec = InterleavedCodec(SecdedCodec(), 4)
        data = (0xDEADBEEF << 96) | (0x01234567 << 64) | (0x89ABCDEF << 32) | 0x5A5A5A5A
        codeword = codec.encode(data)
        for start in range(0, codec.code_bits - 3):
            result = codec.decode(codeword ^ (0b1111 << start))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == data

    def test_detects_double_error_in_one_lane(self):
        """The ablation's point: 4-way SECDED fails where BCH t=4
        succeeds — two random errors landing in the same lane."""
        codec = InterleavedCodec(SecdedCodec(), 4)
        codeword = codec.encode(12345)
        # Bits 0 and 4 both belong to lane 0.
        result = codec.decode(codeword ^ 0b10001)
        assert result.status is DecodeStatus.DETECTED

    def test_burst_vs_random_contrast_with_bch(self):
        bch = BchCodec(data_bits=32, t=4)
        interleaved = InterleavedCodec(SecdedCodec(), 4)
        # Same-lane double error: BCH corrects, interleaved SECDED cannot.
        bch_word = bch.encode(777) ^ 0b10001
        assert bch.decode(bch_word).status is DecodeStatus.CORRECTED
        il_word = interleaved.encode(777) ^ 0b10001
        assert interleaved.decode(il_word).status is DecodeStatus.DETECTED


class TestCodecMemoryWrapper:
    def test_write_read_round_trip(self):
        wrapper = CodecMemoryWrapper(DictStore(), SecdedCodec())
        wrapper.write(4, 0xFEEDFACE)
        assert wrapper.read(4) == 0xFEEDFACE
        assert wrapper.stats.reads == 1
        assert wrapper.stats.writes == 1

    def test_storage_holds_codewords_not_data(self):
        store = DictStore()
        wrapper = CodecMemoryWrapper(store, SecdedCodec())
        wrapper.write(0, 0xFEEDFACE)
        assert store.words[0] == SecdedCodec().encode(0xFEEDFACE)

    def test_single_flip_corrected_and_counted(self):
        store = DictStore()
        wrapper = CodecMemoryWrapper(store, SecdedCodec())
        wrapper.write(0, 42)
        store.words[0] ^= 1 << 17
        assert wrapper.read(0) == 42
        assert wrapper.stats.corrected_words == 1
        assert wrapper.stats.corrected_bits == 1

    def test_double_flip_raises(self):
        store = DictStore()
        wrapper = CodecMemoryWrapper(store, SecdedCodec())
        wrapper.write(0, 42)
        store.words[0] ^= 0b101
        with pytest.raises(UncorrectableError) as excinfo:
            wrapper.read(0)
        assert excinfo.value.address == 0
        assert wrapper.stats.detected_words == 1

    def test_double_flip_best_effort_when_not_raising(self):
        store = DictStore()
        wrapper = CodecMemoryWrapper(store, SecdedCodec(), raise_on_detect=False)
        wrapper.write(0, 42)
        store.words[0] ^= 0b101
        wrapper.read(0)  # returns best effort, no raise
        assert wrapper.stats.detected_words == 1

    def test_scrub_repairs_single_errors(self):
        store = DictStore()
        wrapper = CodecMemoryWrapper(store, SecdedCodec())
        rng = random.Random(0)
        originals = {}
        for address in range(16):
            value = rng.getrandbits(32)
            originals[address] = value
            wrapper.write(address, value)
        for address in (3, 7, 11):
            store.words[address] ^= 1 << rng.randrange(39)
        repaired = wrapper.scrub(range(16))
        assert repaired == 3
        for address in range(16):
            assert wrapper.read(address) == originals[address]

    def test_stats_reset(self):
        wrapper = CodecMemoryWrapper(DictStore(), SecdedCodec())
        wrapper.write(0, 1)
        wrapper.read(0)
        wrapper.stats.reset()
        assert wrapper.stats.reads == 0
        assert wrapper.stats.writes == 0
