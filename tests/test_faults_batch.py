"""Batched fault sampling must reproduce the scalar fault statistics.

The gap-sampling fault engine draws a different RNG stream layout than
a per-access Bernoulli loop, so the contract is *statistical* equality
(same per-access, per-bit flip law) plus exact semantics for forced
masks — and for the array's BER tester, *bit-exact* equality, because
the vectorized tester consumes the identical uniform stream as the
scalar reference.
"""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.core.bitops import popcount
from repro.core.retention import RETENTION_CELL_BASED_40NM
from repro.memdev.array import MemoryArray
from repro.soc.faults import VoltageFaultModel


def make_model(vdd=0.42, width=32, seed=11):
    return VoltageFaultModel(
        ACCESS_CELL_BASED_40NM, width=width, vdd=vdd,
        rng=np.random.default_rng(seed),
    )


class TestBatchMaskSampling:
    def test_batch_matches_scalar_statistics(self):
        """Same seed, same access count: batch and scalar paths must
        land within a tight band around the Bernoulli expectation."""
        accesses = 400_000
        scalar_model = make_model()
        batch_model = make_model()
        scalar_bits = 0
        for _ in range(accesses):
            scalar_bits += popcount(scalar_model.sample_mask())
        masks = batch_model.sample_masks(accesses)
        assert batch_model.injected_bits == sum(
            popcount(int(m)) for m in masks
        )
        expect = accesses * scalar_model.width * scalar_model.p_bit
        band = 6.0 * np.sqrt(expect) + 10.0
        assert abs(scalar_bits - expect) < band
        assert abs(batch_model.injected_bits - expect) < band
        assert scalar_model.injected_bits == scalar_bits

    def test_event_rate_matches_word_fault_probability(self):
        accesses = 400_000
        model = make_model(seed=12)
        model.sample_masks(accesses)
        expect = accesses * model.p_any
        band = 6.0 * np.sqrt(expect) + 10.0
        assert abs(model.injected_events - expect) < band

    def test_every_sampled_mask_is_nonzero_at_fault_sites(self):
        model = make_model(vdd=0.34, seed=13)
        masks = model.sample_masks(50_000)
        faulty = masks[masks != 0]
        assert faulty.size == model.injected_events
        assert int(faulty.max()) < (1 << model.width)

    def test_batch_then_scalar_continues_the_gap_walk(self):
        """Splitting the same access stream into batch + scalar chunks
        keeps the overall event rate correct (the leftover gap carries
        across the boundary)."""
        accesses, split = 200_000, 70_000
        model = make_model(vdd=0.40, seed=14)
        model.sample_masks(split)
        for _ in range(accesses - split):
            model.sample_mask()
        expect = accesses * model.p_any
        band = 6.0 * np.sqrt(expect) + 10.0
        assert abs(model.injected_events - expect) < band

    def test_forced_masks_fire_first_in_batch(self):
        model = make_model()
        model.force_next(0b101)
        model.force_next(0b010)
        masks = model.sample_masks(10)
        assert masks[0] == 0b101
        assert masks[1] == 0b010

    def test_zero_probability_costs_no_rng_draws(self):
        model = make_model(vdd=1.1)
        assert model.p_any == 0.0
        state_before = model.rng.bit_generator.state["state"]
        assert int(model.sample_masks(10_000).sum()) == 0
        assert model.sample_mask() == 0
        assert model.rng.bit_generator.state["state"] == state_before

    def test_negative_access_count_rejected(self):
        with pytest.raises(ValueError):
            make_model().sample_masks(-1)


class TestArrayBerBitExact:
    def test_vectorized_tester_matches_scalar_reference(self):
        """Identical RNG state in, identical error counts out."""
        for vdd in (0.34, 0.40, 0.46):
            a = MemoryArray(
                64, 32, RETENTION_CELL_BASED_40NM, ACCESS_CELL_BASED_40NM,
                rng=np.random.default_rng(21),
            )
            b = MemoryArray(
                64, 32, RETENTION_CELL_BASED_40NM, ACCESS_CELL_BASED_40NM,
                rng=np.random.default_rng(21),
            )
            assert a.measure_access_ber(vdd, 5000) == \
                b.measure_access_ber_scalar(vdd, 5000)

    def test_grid_matches_pointwise_measurement(self):
        voltages = np.linspace(0.32, 0.48, 5)
        a = MemoryArray(
            64, 32, RETENTION_CELL_BASED_40NM, ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(22),
        )
        b = MemoryArray(
            64, 32, RETENTION_CELL_BASED_40NM, ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(22),
        )
        grid = a.measure_access_ber_grid(voltages, 2000)
        pointwise = np.array([
            b.measure_access_ber(float(v), 2000)[0] / (2000 * 32)
            for v in voltages
        ])
        np.testing.assert_array_equal(grid, pointwise)
