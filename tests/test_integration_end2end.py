"""End-to-end integration matrix.

Cross-layer tests: every mitigation scheme against every workload at
characteristic voltage classes, Monte-Carlo validation of the FIT
arithmetic, PVT/temperature shift coherence, and the full-report
round trip.  These are the tests that would catch a wiring regression
between packages that each pass their own unit suites.
"""

import numpy as np
import pytest

from repro.analysis.report import full_report
from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_CELL_BASED_40NM_TYPICAL,
)
from repro.core.fit_solver import SCHEME_SECDED, minimum_voltage
from repro.core.multibit import prob_at_least
from repro.core.retention import RETENTION_CELL_BASED_40NM
from repro.mitigation import (
    DectedRunner,
    NoMitigationRunner,
    OceanRunner,
    SecdedRunner,
)
from repro.workloads.fft import build_fft_program
from repro.workloads.fir import build_fir_program

ALL_RUNNERS = (NoMitigationRunner, SecdedRunner, DectedRunner, OceanRunner)


def make_workloads():
    fft = build_fft_program(64)
    fir = build_fir_program(64, 8, 4)
    return (
        (fft.workload, fft.expected_output(list(fft.data_words[:64]))),
        (
            fir.workload,
            fir.expected_output(list(fir.workload.data_words[:64])),
        ),
    )


class TestSchemeWorkloadMatrix:
    @pytest.mark.parametrize("runner_cls", ALL_RUNNERS)
    def test_clean_voltage_all_pairs(self, runner_cls):
        """Above the onset every scheme completes every workload."""
        for workload, golden in make_workloads():
            runner = runner_cls(ACCESS_CELL_BASED_40NM, seed=1)
            outcome = runner.run(workload, vdd=0.60, frequency=290e3)
            assert outcome.output_matches(golden), (
                runner_cls.name, workload.name
            )

    @pytest.mark.parametrize(
        "runner_cls", [SecdedRunner, DectedRunner, OceanRunner]
    )
    def test_protected_schemes_survive_faults_on_both_workloads(
        self, runner_cls
    ):
        for workload, golden in make_workloads():
            runner = runner_cls(ACCESS_CELL_BASED_40NM, seed=2)
            outcome = runner.run(workload, vdd=0.40, frequency=290e3)
            assert outcome.output_matches(golden), (
                runner_cls.name, workload.name
            )

    def test_energy_reports_share_structure(self):
        """Every runner produces a report whose components sum to the
        total — the invariant the Figure 8/9 stacking relies on."""
        workload, _ = make_workloads()[0]
        for runner_cls in ALL_RUNNERS:
            runner = runner_cls(ACCESS_CELL_BASED_40NM_TYPICAL, seed=0)
            outcome = runner.run(workload, vdd=0.50, frequency=290e3)
            report = outcome.report
            assert report.total_w == pytest.approx(
                sum(c.total_w for c in report.components)
            )
            assert report.dynamic_w + report.leakage_w == pytest.approx(
                report.total_w
            )

    def test_access_counts_scale_with_workload_size(self):
        small = build_fft_program(64)
        large = build_fft_program(256)
        outcomes = []
        for program in (small, large):
            runner = NoMitigationRunner(ACCESS_CELL_BASED_40NM, seed=0)
            outcomes.append(
                runner.run(program.workload, vdd=0.60, frequency=290e3)
            )
        reads_small = outcomes[0].sim.access_counts["IM"][0]
        reads_large = outcomes[1].sim.access_counts["IM"][0]
        # N log N scaling: 256-point is > 4x the 64-point work.
        assert reads_large > 4.0 * reads_small


class TestFitArithmeticAgainstMonteCarlo:
    def test_word_failure_probability_matches_sampling(self):
        """The solver math (binomial tail) against brute-force sampling
        at a loose target where MC is feasible."""
        rng = np.random.default_rng(3)
        p_bit = 0.01
        n_bits, k = 39, 3
        analytic = prob_at_least(n_bits, k, p_bit)
        trials = 200_000
        errors = rng.binomial(n_bits, p_bit, size=trials)
        measured = float((errors >= k).mean())
        assert measured == pytest.approx(analytic, rel=0.1)

    def test_solver_voltage_matches_direct_scan(self):
        """The closed-form minimum voltage equals a brute-force scan of
        the failure probability."""
        solution = minimum_voltage(
            ACCESS_CELL_BASED_40NM, SCHEME_SECDED, fit_target=1e-9
        )
        grid = np.arange(0.30, 0.56, 0.0005)
        feasible = [
            v
            for v in grid
            if SCHEME_SECDED.failure_probability(
                ACCESS_CELL_BASED_40NM.bit_error_probability(float(v))
            )
            <= 1e-9
        ]
        assert solution.vdd == pytest.approx(min(feasible), abs=0.001)


class TestEnvironmentShifts:
    def test_ss_corner_raises_scheme_voltage(self):
        nominal = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_SECDED).vdd
        slow = minimum_voltage(
            ACCESS_CELL_BASED_40NM.shifted(+0.04), SCHEME_SECDED
        ).vdd
        assert slow == pytest.approx(nominal + 0.04, abs=1e-6)

    def test_shift_validation(self):
        with pytest.raises(ValueError):
            ACCESS_CELL_BASED_40NM.shifted(-1.0)

    def test_hot_retention_needs_more_voltage(self):
        hot = RETENTION_CELL_BASED_40NM.at_temperature(85.0)
        assert hot.v_mean > RETENTION_CELL_BASED_40NM.v_mean
        assert hot.first_failure_voltage(32768) > (
            RETENTION_CELL_BASED_40NM.first_failure_voltage(32768)
        )

    def test_cold_is_reference_below_reference(self):
        cold = RETENTION_CELL_BASED_40NM.at_temperature(-20.0)
        assert cold.v_mean < RETENTION_CELL_BASED_40NM.v_mean


class TestFullReport:
    def test_report_generates_all_sections(self):
        text = full_report(fft_points=16)
        for marker in (
            "Figure 1", "Table 1", "Figure 4", "Table 2",
            "Figures 8/9", "Figure 10", "Headline claims",
        ):
            assert marker in text, marker
        # The key reproduced numbers appear.
        assert "0.33" in text
        assert "paper: up to 3x" in text


class TestPackageDoctest:
    def test_module_doctest(self):
        import doctest

        import repro

        results = doctest.testmod(repro)
        assert results.failed == 0
        assert results.attempted >= 1
