"""Tests for the Monte-Carlo memory array (Figure 3 substrate)."""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM, AccessErrorModel
from repro.core.retention import RetentionModel
from repro.memdev.array import AccessKind, MemoryArray


@pytest.fixture
def retention():
    return RetentionModel(v_mean=0.3, v_sigma=0.03)


@pytest.fixture
def access():
    return AccessErrorModel(amplitude=4.5, exponent=7.4, v_onset=0.555)


@pytest.fixture
def array(retention, access):
    return MemoryArray(
        128, 32, retention, access, rng=np.random.default_rng(42)
    )


class TestConstruction:
    def test_rejects_bad_shape(self, retention, access):
        with pytest.raises(ValueError):
            MemoryArray(0, 32, retention, access)

    def test_vmin_map_shape(self, array):
        assert array.retention_vmin_map().shape == (128, 32)

    def test_vmin_map_is_copy(self, array):
        array.retention_vmin_map()[0, 0] = 99.0
        assert array.retention_vmin_map()[0, 0] != 99.0

    def test_reproducible_with_seed(self, retention, access):
        a = MemoryArray(64, 32, retention, access, rng=np.random.default_rng(7))
        b = MemoryArray(64, 32, retention, access, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(
            a.retention_vmin_map(), b.retention_vmin_map()
        )

    def test_population_statistics(self, retention, access):
        array = MemoryArray(
            512, 64, retention, access, rng=np.random.default_rng(0)
        )
        vmin = array.retention_vmin_map()
        assert vmin.mean() == pytest.approx(0.3, abs=0.01)
        # Systematic gradient adds a little variance on top.
        assert vmin.std() == pytest.approx(0.03, rel=0.25)

    def test_zero_gradient_matches_pure_population(self, retention, access):
        array = MemoryArray(
            512, 64, retention, access,
            rng=np.random.default_rng(1), gradient_v=0.0,
        )
        assert array.retention_vmin_map().std() == pytest.approx(
            0.03, rel=0.05
        )

    def test_gradient_adds_spatial_structure(self, retention, access):
        """Neighbouring rows must correlate when a gradient is present:
        the Figure 3 maps show regional, not salt-and-pepper, failures."""
        array = MemoryArray(
            256, 32, retention, access,
            rng=np.random.default_rng(3), gradient_v=0.15,
        )
        vmin = array.retention_vmin_map()
        row_means = vmin.mean(axis=1)
        adjacent = np.corrcoef(row_means[:-1], row_means[1:])[0, 1]
        assert adjacent > 0.5


class TestRetentionTest:
    def test_all_fail_at_zero_volts(self, array):
        result = array.retention_test(0.0)
        assert result.failing_bits == array.total_bits

    def test_none_fail_far_above_population(self, array):
        assert array.retention_test(0.6).failing_bits == 0

    def test_monotone_in_voltage(self, array):
        counts = [
            array.retention_test(v).failing_bits
            for v in (0.2, 0.26, 0.3, 0.34, 0.4)
        ]
        assert all(b <= a for a, b in zip(counts, counts[1:]))

    def test_measured_vmin_is_worst_cell(self, array):
        vmin = array.measured_retention_vmin()
        assert array.retention_test(vmin).failing_bits == 0
        assert array.retention_test(vmin - 0.005).failing_bits >= 1

    def test_rejects_negative_voltage(self, array):
        with pytest.raises(ValueError):
            array.retention_test(-0.1)


class TestAccessInjection:
    def test_no_flips_above_onset(self, array):
        for _ in range(100):
            assert array.sample_access_flips(0.6, AccessKind.READ) == 0

    def test_flip_rate_matches_model(self, retention):
        access = AccessErrorModel(amplitude=4.5, exponent=7.4, v_onset=0.555)
        array = MemoryArray(
            64, 32, retention, access, rng=np.random.default_rng(11)
        )
        vdd = 0.40
        p_bit = access.bit_error_probability(vdd)
        errors, bits = array.measure_access_ber(vdd, accesses=30_000)
        measured = errors / bits
        assert measured == pytest.approx(p_bit, rel=0.15)

    def test_flips_fit_word_width(self, retention, access):
        array = MemoryArray(
            64, 32, retention, access, rng=np.random.default_rng(5)
        )
        for _ in range(200):
            mask = array.sample_access_flips(0.35, AccessKind.WRITE)
            assert 0 <= mask < (1 << 32)

    def test_rejects_bad_access_count(self, array):
        with pytest.raises(ValueError):
            array.measure_access_ber(0.4, accesses=0)


class TestWordStorage:
    def test_round_trip(self, array):
        array.write_word(5, 0xDEADBEEF)
        assert array.read_word(5) == 0xDEADBEEF

    def test_default_zero(self, array):
        assert array.read_word(0) == 0

    def test_address_bounds(self, array):
        with pytest.raises(IndexError):
            array.read_word(128)
        with pytest.raises(IndexError):
            array.write_word(-1, 0)

    def test_value_bounds(self, array):
        with pytest.raises(ValueError):
            array.write_word(0, 1 << 32)

    def test_corrupt_retention_flips_failing_cells_only(self, retention):
        array = MemoryArray(
            256, 32, retention, ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(8),
        )
        for address in range(256):
            array.write_word(address, 0)
        failing = array.retention_failures(0.27)
        flipped = array.corrupt_retention(0.27)
        assert 0 < flipped <= failing.sum()
        # Only words containing failing cells may have changed.
        for address in range(256):
            word = array.read_word(address)
            if word:
                assert failing[address].any()

    def test_corrupt_retention_noop_at_high_voltage(self, array):
        array.write_word(3, 123)
        assert array.corrupt_retention(0.6) == 0
        assert array.read_word(3) == 123
