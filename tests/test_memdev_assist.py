"""Tests for the Section III assist-technique models."""

import pytest

from repro.core.fit_solver import SCHEME_NONE, SCHEME_SECDED, minimum_voltage
from repro.memdev.assist import (
    ALL_ASSISTS,
    CELL_VDD_BOOST,
    FULL_ASSIST_STACK,
    NEGATIVE_BITLINE,
    WL_UNDERDRIVE,
    AssistTechnique,
    assisted_instance,
)
from repro.memdev.library import cell_based_imec_40nm, commercial_cots_40nm


class TestAssistValidation:
    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            AssistTechnique(
                name="bad", onset_shift_v=-0.01,
                access_energy_factor=1.0, area_overhead=0.0,
            )

    def test_rejects_energy_discount(self):
        with pytest.raises(ValueError):
            AssistTechnique(
                name="bad", onset_shift_v=0.01,
                access_energy_factor=0.9, area_overhead=0.0,
            )

    def test_catalog_is_cost_ordered(self):
        """Deeper assists cost more energy and area."""
        shifts = [a.onset_shift_v for a in ALL_ASSISTS]
        energies = [a.access_energy_factor for a in ALL_ASSISTS]
        areas = [a.area_overhead for a in ALL_ASSISTS]
        assert shifts == sorted(shifts)
        assert energies == sorted(energies)
        assert areas == sorted(areas)


class TestApplyToAccess:
    def test_onset_moves_down(self):
        base = commercial_cots_40nm().access
        assisted = NEGATIVE_BITLINE.apply_to_access(base)
        assert assisted.v_onset == pytest.approx(base.v_onset - 0.05)
        assert assisted.exponent == base.exponent

    def test_assist_lowers_scheme_vmin_by_its_shift(self):
        base = commercial_cots_40nm().access
        assisted = CELL_VDD_BOOST.apply_to_access(base)
        v_base = minimum_voltage(base, SCHEME_SECDED).vdd
        v_assist = minimum_voltage(assisted, SCHEME_SECDED).vdd
        assert v_assist == pytest.approx(v_base - 0.08, abs=1e-6)


class TestAssistedInstance:
    def test_energy_and_name_updated(self):
        base = cell_based_imec_40nm()
        boosted = assisted_instance(base, WL_UNDERDRIVE)
        assert boosted.name.endswith("+WL-underdrive")
        assert boosted.energy.read_energy(0.5) == pytest.approx(
            1.03 * base.energy.read_energy(0.5)
        )

    def test_area_overhead_applied(self):
        base = cell_based_imec_40nm()
        stacked = assisted_instance(base, FULL_ASSIST_STACK)
        assert stacked.energy.area_mm2() > base.energy.area_mm2()

    def test_retention_help_only_where_promised(self):
        base = cell_based_imec_40nm()
        wl = assisted_instance(base, WL_UNDERDRIVE)
        boost = assisted_instance(base, CELL_VDD_BOOST)
        assert wl.retention.v_mean == base.retention.v_mean
        assert boost.retention.v_mean == pytest.approx(
            base.retention.v_mean - 0.02
        )

    def test_base_instance_untouched(self):
        base = cell_based_imec_40nm()
        cal_before = base.energy.energy_calibration
        assisted_instance(base, FULL_ASSIST_STACK)
        assert base.energy.energy_calibration == cal_before


class TestAssistVersusMitigation:
    def test_full_stack_buys_less_than_secded(self):
        """The paper's position: assists are worth tens of millivolts,
        run-time mitigation is worth over a hundred — which is why the
        paper invests in wrappers rather than deep custom assists."""
        base = cell_based_imec_40nm()
        v_none = minimum_voltage(base.access, SCHEME_NONE).vdd
        v_assisted = minimum_voltage(
            FULL_ASSIST_STACK.apply_to_access(base.access), SCHEME_NONE
        ).vdd
        v_secded = minimum_voltage(base.access, SCHEME_SECDED).vdd
        assist_gain = v_none - v_assisted
        mitigation_gain = v_none - v_secded
        assert assist_gain == pytest.approx(0.12, abs=1e-6)
        assert mitigation_gain < assist_gain + 0.02  # SECDED ~0.11 V
        # But mitigation composes with CV^2 at no per-access boost cost:
        # at the respective operating points, the SECDED system's access
        # energy factor (1.35) applies to a (0.44/0.435)^2 ~ equal CV^2,
        # while the assist pays 1.25x at a similar voltage — the paper's
        # wrappers win once both are normalised, and they also stack.
        combined = minimum_voltage(
            FULL_ASSIST_STACK.apply_to_access(base.access), SCHEME_SECDED
        ).vdd
        assert combined < v_secded  # assists and mitigation compose
