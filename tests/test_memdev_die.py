"""Tests for die populations (Figure 4 substrate) and characterisation."""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.core.retention import RETENTION_CELL_BASED_40NM, RetentionModel
from repro.memdev.characterize import (
    access_shmoo,
    characterize_population,
    refit_access_model,
    refit_retention_model,
    retention_shmoo,
)
from repro.memdev.array import MemoryArray
from repro.memdev.die import DiePopulation


@pytest.fixture(scope="module")
def population():
    return DiePopulation(
        base_retention=RETENTION_CELL_BASED_40NM,
        access_model=ACCESS_CELL_BASED_40NM,
        words=256,
        bits=32,
        n_dies=9,
        seed=1,
    )


class TestDiePopulation:
    def test_nine_dies(self, population):
        assert population.n_dies == 9

    def test_rejects_zero_dies(self):
        with pytest.raises(ValueError):
            DiePopulation(
                RETENTION_CELL_BASED_40NM, ACCESS_CELL_BASED_40NM, n_dies=0
            )

    def test_dies_differ(self, population):
        vmins = [d.array.measured_retention_vmin() for d in population.dies]
        assert len(set(vmins)) == 9

    def test_offsets_are_recorded(self, population):
        offsets = [d.offset_v for d in population.dies]
        assert max(offsets) > 0 > min(offsets)

    def test_cumulative_curve_monotone_decreasing(self, population):
        voltages = np.linspace(0.1, 0.4, 16)
        curve = population.cumulative_failure_curve(voltages)
        assert all(b <= a for a, b in zip(curve, curve[1:]))
        assert curve[0] > 0.5  # essentially everything fails at 0.1 V
        assert curve[-1] < 1e-3

    def test_per_die_counts_sum_to_cumulative(self, population):
        vdd = 0.22
        counts = population.per_die_failure_counts(vdd)
        curve = population.cumulative_failure_curve(np.array([vdd]))
        assert sum(counts) == pytest.approx(
            curve[0] * population.total_bits
        )

    def test_refit_recovers_population(self, population):
        voltages = np.linspace(0.14, 0.27, 14)
        refit = population.refit_retention_model(voltages)
        assert refit.v_mean == pytest.approx(
            RETENTION_CELL_BASED_40NM.v_mean, abs=0.01
        )
        # Die-to-die offsets widen the observed sigma slightly.
        assert refit.v_sigma == pytest.approx(
            RETENTION_CELL_BASED_40NM.v_sigma, rel=0.35
        )

    def test_worst_die_dominates_retention(self, population):
        worst = population.worst_die_retention_vmin()
        assert worst >= max(
            d.array.measured_retention_vmin() for d in population.dies
        )


class TestShmoo:
    def test_retention_shmoo_first_passing(self):
        array = MemoryArray(
            256, 32,
            RetentionModel(v_mean=0.2, v_sigma=0.03),
            ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(2),
        )
        shmoo = retention_shmoo(array, np.linspace(0.1, 0.45, 36))
        v_pass = shmoo.first_passing_voltage()
        assert v_pass >= array.measured_retention_vmin()

    def test_first_passing_raises_when_none(self):
        array = MemoryArray(
            64, 32,
            RetentionModel(v_mean=0.5, v_sigma=0.01),
            ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(2),
        )
        shmoo = retention_shmoo(array, np.linspace(0.1, 0.3, 5))
        with pytest.raises(ValueError):
            shmoo.first_passing_voltage()

    def test_access_shmoo_refit_recovers_model(self):
        array = MemoryArray(
            64, 32,
            RetentionModel(v_mean=0.2, v_sigma=0.03),
            ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(3),
        )
        voltages = np.linspace(0.28, 0.40, 7)
        shmoo = access_shmoo(array, voltages, accesses_per_point=20_000)
        fitted = refit_access_model(shmoo, v_onset=0.555)
        # Finite-count Monte-Carlo statistics leave the exponent fuzzy;
        # the fitted law must still predict the BER at 0.30 V within 2x.
        assert 5.0 < fitted.exponent < 10.0
        truth = ACCESS_CELL_BASED_40NM.bit_error_probability(0.30)
        assert 0.5 * truth < fitted.bit_error_probability(0.30) < 2.0 * truth

    def test_refit_kind_mismatch_raises(self):
        array = MemoryArray(
            64, 32,
            RetentionModel(v_mean=0.2, v_sigma=0.03),
            ACCESS_CELL_BASED_40NM,
            rng=np.random.default_rng(4),
        )
        ret = retention_shmoo(array, np.linspace(0.1, 0.3, 5))
        with pytest.raises(ValueError):
            refit_access_model(ret)
        acc = access_shmoo(array, np.linspace(0.35, 0.5, 4), 100)
        with pytest.raises(ValueError):
            refit_retention_model(acc)


class TestCharacterizationReport:
    def test_full_campaign(self, population):
        report = characterize_population(population, "cell-based")
        assert report.n_dies == 9
        assert report.retention_vmin_worst == pytest.approx(0.33, abs=0.03)
        assert report.access_onset_estimate == pytest.approx(0.555, abs=0.01)
        assert "cell-based" in str(report)
