"""Tests for the CACTI-substitute energy model and the Table 1 library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fit_solver import SCHEME_OCEAN
from repro.memdev.cell import CELL_BASED_AOI, COMMERCIAL_6T
from repro.memdev.energy import MemoryEnergyModel, MemoryGeometry
from repro.memdev.library import (
    cell_based_65nm,
    cell_based_imec_40nm,
    commercial_cots_40nm,
    custom_sram_40nm,
    table1_instances,
)
from repro.tech.node import NODE_40NM_LP


class TestGeometry:
    def test_rows_and_columns(self):
        geo = MemoryGeometry(1024, 32, column_mux=4)
        assert geo.rows == 256
        assert geo.columns == 128
        assert geo.total_bits == 32768

    def test_rejects_non_dividing_mux(self):
        with pytest.raises(ValueError, match="divide"):
            MemoryGeometry(100, 32, column_mux=3)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            MemoryGeometry(0, 32)


class TestEnergyModel:
    @pytest.fixture
    def model(self):
        return MemoryEnergyModel(
            MemoryGeometry(1024, 32), NODE_40NM_LP, COMMERCIAL_6T
        )

    def test_energy_scales_quadratically_with_vdd(self, model):
        assert model.read_energy(1.0) == pytest.approx(
            4.0 * model.read_energy(0.5)
        )

    def test_write_costs_at_least_read(self, model):
        """Full-swing write bitlines versus reduced-swing read."""
        assert model.write_energy(0.8) >= model.read_energy(0.8)

    def test_cell_based_full_swing_write_equals_read(self):
        model = MemoryEnergyModel(
            MemoryGeometry(1024, 32), NODE_40NM_LP, CELL_BASED_AOI
        )
        assert model.write_energy(0.8) == pytest.approx(model.read_energy(0.8))

    def test_hierarchical_bitlines_cut_energy(self):
        """Section III: short local bitlines reduce dynamic access
        energy — same cell, hierarchical vs monolithic organisation."""
        import dataclasses

        monolithic = MemoryEnergyModel(
            MemoryGeometry(1024, 32), NODE_40NM_LP, COMMERCIAL_6T
        )
        hier_cell = dataclasses.replace(
            COMMERCIAL_6T, name="6T-hier", bitline_rows=16
        )
        hierarchical = MemoryEnergyModel(
            MemoryGeometry(1024, 32), NODE_40NM_LP, hier_cell
        )
        assert hierarchical._bitline_cap() < monolithic._bitline_cap()
        assert hierarchical.read_energy(1.1) < monolithic.read_energy(1.1)

    def test_leakage_grows_with_vdd(self, model):
        assert model.leakage_power(1.1) > model.leakage_power(0.5)

    def test_leakage_scales_with_bits(self):
        small = MemoryEnergyModel(
            MemoryGeometry(512, 32), NODE_40NM_LP, COMMERCIAL_6T
        )
        large = MemoryEnergyModel(
            MemoryGeometry(2048, 32), NODE_40NM_LP, COMMERCIAL_6T
        )
        assert large.leakage_power(1.1) == pytest.approx(
            4.0 * small.leakage_power(1.1)
        )

    def test_max_frequency_monotone(self, model):
        freqs = [model.max_frequency(v) for v in (0.4, 0.6, 0.8, 1.1)]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_rejects_bad_calibration(self):
        with pytest.raises(ValueError):
            MemoryEnergyModel(
                MemoryGeometry(1024, 32),
                NODE_40NM_LP,
                COMMERCIAL_6T,
                energy_calibration=0.0,
            )

    @given(vdd=st.floats(min_value=0.1, max_value=1.3))
    @settings(max_examples=30, deadline=None)
    def test_energies_positive(self, vdd):
        model = MemoryEnergyModel(
            MemoryGeometry(1024, 32), NODE_40NM_LP, COMMERCIAL_6T
        )
        assert model.read_energy(vdd) > 0.0
        assert model.write_energy(vdd) > 0.0
        assert model.leakage_power(vdd) > 0.0


class TestTable1Calibration:
    """Each instance must land on its published Table 1 anchors."""

    def test_cots_row(self):
        row = commercial_cots_40nm().table1_row()
        assert row["dyn_energy_pj"] == pytest.approx(12.0, rel=0.05)
        assert row["leakage_uw"] == pytest.approx(2.2, rel=0.05)
        assert row["area_mm2"] == pytest.approx(0.01, rel=0.35)
        assert row["retention_v"] == pytest.approx(0.85, abs=0.02)
        assert row["max_freq_mhz"] == pytest.approx(820.0, rel=0.05)

    def test_custom_row(self):
        row = custom_sram_40nm().table1_row()
        assert row["dyn_energy_pj"] == pytest.approx(3.6, rel=0.05)
        assert row["leakage_uw"] == pytest.approx(11.0, rel=0.05)
        assert row["area_mm2"] == pytest.approx(0.024, rel=0.15)
        assert row["max_freq_mhz"] == pytest.approx(454.0, rel=0.05)

    def test_imec_row(self):
        row = cell_based_imec_40nm().table1_row()
        assert row["dyn_energy_pj"] == pytest.approx(1.4, rel=0.05)
        assert row["leakage_uw"] == pytest.approx(5.9, rel=0.05)
        assert row["area_mm2"] == pytest.approx(0.058, rel=0.15)
        assert row["retention_v"] == pytest.approx(0.32, abs=0.02)
        assert row["max_freq_mhz"] == pytest.approx(96.0, rel=0.05)

    def test_imec_low_voltage_anchors(self):
        """0.18 pJ at 0.4 V and ~0.4 MHz at 0.45 V (both measured)."""
        energy = cell_based_imec_40nm().energy
        assert energy.read_energy(0.4) * 1e12 == pytest.approx(0.18, rel=0.05)
        assert energy.max_frequency(0.45) / 1e6 == pytest.approx(0.4, rel=0.55)

    def test_65nm_low_voltage_anchors(self):
        energy = cell_based_65nm().energy
        assert energy.read_energy(0.4) * 1e12 == pytest.approx(0.93, rel=0.05)
        assert energy.max_frequency(0.65) / 1e6 == pytest.approx(9.5, rel=0.05)
        assert energy.leakage_power(0.35) * 1e6 == pytest.approx(8.0, rel=0.1)

    def test_area_ordering_matches_paper(self):
        """COTS < custom < imec cell-based in area per bit at 40 nm."""
        rows = {i.name: i.table1_row() for i in table1_instances()}
        assert (
            rows["COTS-40nm"]["area_mm2"]
            < rows["CustomSRAM-40nm"]["area_mm2"]
            < rows["CellBased-imec-40nm"]["area_mm2"]
        )

    def test_cell_based_energy_advantage(self):
        """The imec memory accesses ~8x cheaper than the COTS macro."""
        rows = {i.name: i.table1_row() for i in table1_instances()}
        ratio = (
            rows["COTS-40nm"]["dyn_energy_pj"]
            / rows["CellBased-imec-40nm"]["dyn_energy_pj"]
        )
        assert 6.0 < ratio < 12.0

    def test_vendor_floor_only_on_cots(self):
        assert commercial_cots_40nm().vendor_vdd_min == pytest.approx(0.7)
        assert cell_based_imec_40nm().vendor_vdd_min is None


class TestInstanceCalculator:
    def test_calculator_binds_models(self):
        calc = cell_based_imec_40nm().calculator()
        point = calc.operating_point(0.44, 1.96e6)
        assert point.total_power > 0.0
        assert point.access_bit_error > 0.0

    def test_minimum_voltage_through_calculator(self):
        """The measured imec instance is slower than the paper's
        simulated platform memory (Table 1's 0.4 MHz at 0.45 V versus
        Table 2's 290 kHz at 0.33 V — a tension internal to the paper);
        through this instance the 290 kHz floor therefore binds at a
        voltage above OCEAN's 0.33 V access limit."""
        calc = cell_based_imec_40nm().calculator()
        sol = calc.minimum_voltage(SCHEME_OCEAN, frequency=290e3)
        assert sol.binding == "frequency"
        assert sol.access_floor == pytest.approx(0.33, abs=0.01)
        assert sol.vdd == pytest.approx(0.43, abs=0.02)
