"""Tests for the wafer-level variation substrate."""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.core.retention import RETENTION_CELL_BASED_40NM
from repro.memdev.wafer import Wafer


@pytest.fixture(scope="module")
def wafer():
    return Wafer(seed=4)


class TestConstruction:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Wafer(radius_mm=0.0)
        with pytest.raises(ValueError):
            Wafer(die_pitch_mm=200.0, radius_mm=150.0)
        with pytest.raises(ValueError):
            Wafer(noise_v=-0.01)

    def test_die_count_plausible(self, wafer):
        """A 300 mm wafer at 20 mm pitch carries on the order of 150
        whole dies inside the edge exclusion."""
        assert 100 < wafer.n_dies < 200

    def test_all_sites_inside_radius(self, wafer):
        for site in wafer.sites:
            assert np.hypot(site.x_mm, site.y_mm) <= wafer.radius_mm

    def test_reproducible(self):
        a = Wafer(seed=7).offsets()
        b = Wafer(seed=7).offsets()
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        assert not np.array_equal(Wafer(seed=1).offsets(), Wafer(seed=2).offsets())


class TestSystematics:
    def test_edge_worse_than_center(self, wafer):
        """The radial component dominates: edge dies sit higher."""
        assert wafer.edge_center_gap() > 0.005

    def test_pure_noise_wafer_has_no_radial_signature(self):
        flat = Wafer(radial_v=0.0, tilt_v=0.0, noise_v=0.004, seed=3)
        assert abs(flat.edge_center_gap()) < 0.004

    def test_offset_spread_combines_components(self, wafer):
        sigma = wafer.offsets().std()
        assert sigma > wafer.noise_v  # systematics add spread


class TestYield:
    def test_yield_monotone_in_voltage(self, wafer):
        yields = [
            wafer.yield_at(v, vmin_nominal=0.44)
            for v in (0.43, 0.45, 0.47, 0.50)
        ]
        assert all(b >= a for a, b in zip(yields, yields[1:]))
        assert yields[0] < 1.0
        assert yields[-1] == 1.0

    def test_yield_bounds(self, wafer):
        assert wafer.yield_at(0.0, 0.44) == 0.0
        with pytest.raises(ValueError):
            wafer.yield_at(-0.1, 0.44)


class TestSampledPopulation:
    def test_population_inherits_wafer_offsets(self, wafer):
        population = wafer.sample_population(
            RETENTION_CELL_BASED_40NM,
            ACCESS_CELL_BASED_40NM,
            n_dies=9,
            words=64,
            bits=16,
        )
        assert population.n_dies == 9
        wafer_offsets = {round(s.offset_v, 12) for s in wafer.sites}
        for die in population.dies:
            assert round(die.offset_v, 12) in wafer_offsets

    def test_population_measures_like_shifted_dies(self, wafer):
        population = wafer.sample_population(
            RETENTION_CELL_BASED_40NM,
            ACCESS_CELL_BASED_40NM,
            n_dies=6,
            words=128,
            bits=32,
        )
        for die in population.dies:
            vmin = die.array.measured_retention_vmin()
            expected = RETENTION_CELL_BASED_40NM.shifted(
                die.offset_v
            ).first_failure_voltage(128 * 32)
            assert vmin == pytest.approx(expected, abs=0.03)

    def test_rejects_oversampling(self, wafer):
        with pytest.raises(ValueError):
            wafer.sample_population(
                RETENTION_CELL_BASED_40NM,
                ACCESS_CELL_BASED_40NM,
                n_dies=wafer.n_dies + 1,
            )

    def test_population_supports_figure4_machinery(self, wafer):
        population = wafer.sample_population(
            RETENTION_CELL_BASED_40NM,
            ACCESS_CELL_BASED_40NM,
            n_dies=5,
            words=64,
            bits=32,
        )
        voltages = np.linspace(0.14, 0.27, 10)
        curve = population.cumulative_failure_curve(voltages)
        assert all(b <= a for a, b in zip(curve, curve[1:]))
        refit = population.refit_retention_model(voltages)
        assert refit.v_mean == pytest.approx(0.20, abs=0.03)
