"""Integration tests: the three mitigation schemes running real FFTs
under fault injection — the executable heart of Section V."""

import pytest

from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_CELL_BASED_40NM_TYPICAL,
)
from repro.mitigation import (
    NoMitigationRunner,
    OceanRunner,
    SecdedRunner,
    optimize_checkpoint_granularity,
)
from repro.workloads.fft import build_fft_program

N = 64
FREQ = 290e3


@pytest.fixture(scope="module")
def program():
    return build_fft_program(N)


@pytest.fixture(scope="module")
def golden(program):
    return program.expected_output(list(program.data_words[:N]))


class TestCleanOperation:
    """Above the access onset every scheme completes correctly."""

    @pytest.mark.parametrize(
        "runner_cls", [NoMitigationRunner, SecdedRunner, OceanRunner]
    )
    def test_correct_at_safe_voltage(self, runner_cls, program, golden):
        runner = runner_cls(ACCESS_CELL_BASED_40NM, seed=1)
        outcome = runner.run(program.workload, vdd=0.60, frequency=FREQ)
        assert outcome.completed
        assert outcome.output_matches(golden)
        assert sum(outcome.sim.injected_bits.values()) == 0

    def test_reports_have_expected_components(self, program):
        none = NoMitigationRunner(ACCESS_CELL_BASED_40NM).run(
            program.workload, 0.60, FREQ
        )
        ocean = OceanRunner(ACCESS_CELL_BASED_40NM).run(
            program.workload, 0.60, FREQ
        )
        assert set(none.report.as_dict()) == {"core", "IM", "SP", "total"}
        assert set(ocean.report.as_dict()) == {
            "core", "IM", "SP", "PM", "total"
        }


class TestFaultedOperation:
    def test_no_mitigation_corrupts_silently(self, program, golden):
        """At 0.40 V the unprotected run finishes but the output is
        wrong — the silent-corruption failure mode."""
        corrupted = 0
        for seed in range(6):
            runner = NoMitigationRunner(ACCESS_CELL_BASED_40NM, seed=seed)
            outcome = runner.run(program.workload, vdd=0.40, frequency=FREQ)
            if not outcome.output_matches(golden):
                corrupted += 1
        assert corrupted >= 4

    def test_secded_corrects_through_faults(self, program, golden):
        for seed in range(4):
            runner = SecdedRunner(ACCESS_CELL_BASED_40NM, seed=seed)
            outcome = runner.run(program.workload, vdd=0.40, frequency=FREQ)
            assert outcome.output_matches(golden)
            assert outcome.sim.corrected_words >= 1

    def test_ocean_rolls_back_through_faults(self, program, golden):
        rollbacks = 0
        detected = 0
        for seed in range(6):
            runner = OceanRunner(ACCESS_CELL_BASED_40NM, seed=seed)
            outcome = runner.run(program.workload, vdd=0.38, frequency=FREQ)
            assert outcome.output_matches(golden)
            rollbacks += outcome.sim.rollbacks
            detected += outcome.sim.detected_words
        assert detected >= 1
        assert rollbacks >= 1

    def test_ocean_survives_deeper_voltage_than_secded_semantics(
        self, program, golden
    ):
        """At 0.36 V (just above the typical-part onset) OCEAN still
        produces correct output under its worst-case error rate."""
        runner = OceanRunner(ACCESS_CELL_BASED_40NM, seed=2)
        outcome = runner.run(program.workload, vdd=0.36, frequency=FREQ)
        assert outcome.output_matches(golden)

    def test_ocean_overhead_cycles_accounted(self, program):
        runner = OceanRunner(ACCESS_CELL_BASED_40NM, seed=0)
        outcome = runner.run(program.workload, vdd=0.60, frequency=FREQ)
        # At least one checkpoint per phase: copies cost modelled cycles.
        assert outcome.sim.overhead_cycles > 0
        assert outcome.sim.total_cycles > outcome.sim.cycles

    def test_checkpoint_interval_reduces_pm_traffic(self, program):
        every = OceanRunner(
            ACCESS_CELL_BASED_40NM, seed=0, checkpoint_interval=1
        ).run(program.workload, 0.60, FREQ)
        sparse = OceanRunner(
            ACCESS_CELL_BASED_40NM, seed=0, checkpoint_interval=3
        ).run(program.workload, 0.60, FREQ)
        assert (
            sparse.sim.access_counts["PM"][1]
            < every.sim.access_counts["PM"][1]
        )

    def test_seeds_reproduce(self, program):
        a = NoMitigationRunner(ACCESS_CELL_BASED_40NM, seed=9).run(
            program.workload, 0.40, FREQ
        )
        b = NoMitigationRunner(ACCESS_CELL_BASED_40NM, seed=9).run(
            program.workload, 0.40, FREQ
        )
        assert a.output == b.output
        assert a.sim.injected_bits == b.sim.injected_bits


class TestOperatingPointPowerOrdering:
    """The paper's central claim, executed: each scheme at its own
    Table 2 voltage; OCEAN < ECC < no-mitigation in total power."""

    def test_power_ordering_at_table2_voltages(self, program, golden):
        outcomes = {}
        for runner_cls, vdd in (
            (NoMitigationRunner, 0.55),
            (SecdedRunner, 0.44),
            (OceanRunner, 0.33),
        ):
            runner = runner_cls(ACCESS_CELL_BASED_40NM_TYPICAL, seed=3)
            outcomes[runner_cls.__name__] = runner.run(
                program.workload, vdd=vdd, frequency=FREQ
            )
        for outcome in outcomes.values():
            assert outcome.output_matches(golden)
        p_none = outcomes["NoMitigationRunner"].power_w
        p_ecc = outcomes["SecdedRunner"].power_w
        p_ocean = outcomes["OceanRunner"].power_w
        assert p_ocean < p_ecc < p_none

    def test_equal_voltage_mitigation_costs_power(self, program):
        """At the same supply, protection is pure overhead — the gain
        only appears because it unlocks lower voltage."""
        vdd = 0.55
        p_none = NoMitigationRunner(
            ACCESS_CELL_BASED_40NM_TYPICAL, seed=0
        ).run(program.workload, vdd, FREQ).power_w
        p_ocean = OceanRunner(
            ACCESS_CELL_BASED_40NM_TYPICAL, seed=0
        ).run(program.workload, vdd, FREQ).power_w
        assert p_ocean > p_none


class TestCheckpointOptimizer:
    def test_no_errors_prefers_sparsest_checkpointing(self):
        plan = optimize_checkpoint_granularity(
            n_phases=10, p_phase=0.0, e_phase=1.0, e_checkpoint=0.5
        )
        assert plan.interval == 10
        assert plan.expected_rollbacks == 0.0

    def test_high_error_rate_prefers_dense_checkpointing(self):
        plan = optimize_checkpoint_granularity(
            n_phases=10, p_phase=0.4, e_phase=1.0, e_checkpoint=0.05
        )
        assert plan.interval == 1

    def test_interior_optimum(self):
        plan = optimize_checkpoint_granularity(
            n_phases=20, p_phase=0.05, e_phase=1.0, e_checkpoint=1.0
        )
        assert 1 < plan.interval < 20

    def test_expected_energy_is_minimal_among_integers(self):
        from repro.mitigation.ocean import _expected_energy

        args = dict(
            n_phases=16, p_phase=0.08, e_phase=1.0,
            e_checkpoint=0.7, e_restore=0.7,
        )
        plan = optimize_checkpoint_granularity(
            args["n_phases"], args["p_phase"], args["e_phase"],
            args["e_checkpoint"], args["e_restore"],
        )
        energies = {
            k: _expected_energy(float(k), **args)
            for k in range(1, 17)
        }
        assert plan.expected_energy == pytest.approx(min(energies.values()))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            optimize_checkpoint_granularity(0, 0.1, 1.0, 1.0)
        with pytest.raises(ValueError):
            optimize_checkpoint_granularity(5, 0.1, 0.0, 1.0)
        with pytest.raises(ValueError):
            optimize_checkpoint_granularity(5, 1.0, 1.0, 1.0)

    def test_scheme_reliability_exposed(self):
        assert NoMitigationRunner.reliability.fail_threshold == 1
        assert SecdedRunner.reliability.fail_threshold == 3
        assert OceanRunner.reliability.fail_threshold == 5


class TestOceanExitPaths:
    """Pin OCEAN's unhappy exits — livelock, unrepairable instruction
    storage, and an unrecoverable protected buffer.

    All at 0.60 V (above the access onset, so no random faults): every
    fault below is queued deterministically with ``force_next``, which
    makes each exit path reachable on purpose instead of by seed
    lottery.
    """

    def _prepared(self, program):
        """Runner + built platform with the workload loaded, faults
        not yet queued — mirrors the front half of SchemeRunner.run."""
        workload = program.workload
        runner = OceanRunner(ACCESS_CELL_BASED_40NM, seed=7)
        platform = runner.build_platform(0.60)
        runner.last_platform = platform
        platform.load_program(list(workload.program_words))
        platform.load_data(list(workload.data_words), workload.data_base)
        return runner, platform, workload

    def test_initial_checkpoint_livelock(self, program):
        """A chunk that can never be read cleanly exhausts the retry
        budget of the very first checkpoint."""
        from repro.mitigation.ocean import MAX_ROLLBACKS_PER_SEGMENT

        runner, platform, workload = self._prepared(program)
        # Every attempt's first SP read trips the detect-only code.
        for _ in range(MAX_ROLLBACKS_PER_SEGMENT):
            platform.sp.faults.force_next(1)
        completed, failure, rollbacks, overhead = runner.execute(
            platform, workload
        )
        assert not completed
        assert failure == "livelock"
        assert rollbacks == 0  # never got past the initial checkpoint

    def test_mid_run_livelock(self, program):
        """A segment that re-faults after every rollback livelocks."""
        from repro.mitigation.ocean import MAX_ROLLBACKS_PER_SEGMENT

        runner, platform, workload = self._prepared(program)
        chunk_words = len(workload.data_words)
        faults = platform.sp.faults
        # Initial checkpoint reads the chunk cleanly.
        for _ in range(chunk_words):
            faults.force_next(0)
        # Then each cycle: the first CPU access to SP after (re)start
        # trips detection, and the subsequent restore's chunk of SP
        # writes stays clean — so every re-execution faults again.
        for _ in range(MAX_ROLLBACKS_PER_SEGMENT + 1):
            faults.force_next(1)
            for _ in range(chunk_words):
                faults.force_next(0)
        completed, failure, rollbacks, overhead = runner.execute(
            platform, workload
        )
        assert not completed
        assert failure == "livelock"
        assert rollbacks == MAX_ROLLBACKS_PER_SEGMENT + 1

    def test_uncorrectable_instruction_memory(self, program):
        """A double bit-flip in the IM beats SECDED; rollback cannot
        repair instruction storage."""
        runner, platform, workload = self._prepared(program)
        platform.im.faults.force_next(0b11)
        completed, failure, rollbacks, overhead = runner.execute(
            platform, workload
        )
        assert not completed
        assert failure == "uncorrectable:IM"
        assert rollbacks == 0

    def test_pm_uncorrectable_on_restore(self, program):
        """A quintuple flip in the protected buffer beats the BCH t=4
        code exactly when a rollback needs it — the scheme's designed
        system-failure threshold."""
        runner, platform, workload = self._prepared(program)
        chunk_words = len(workload.data_words)
        # SP: clean initial-checkpoint reads, then one detected fault
        # on the first CPU access to force a rollback.
        for _ in range(chunk_words):
            platform.sp.faults.force_next(0)
        platform.sp.faults.force_next(1)
        # PM: clean checkpoint writes, then five simultaneous flips on
        # the first restore read — beyond BCH t=4.
        for _ in range(chunk_words):
            platform.pm.faults.force_next(0)
        platform.pm.faults.force_next(0b11111)
        completed, failure, rollbacks, overhead = runner.execute(
            platform, workload
        )
        assert not completed
        assert failure == "pm-uncorrectable"
        assert rollbacks == 1
