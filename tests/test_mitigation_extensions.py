"""Tests for the extension features: DECTED, DMA checkpoints."""

import pytest

from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_CELL_BASED_40NM_TYPICAL,
)
from repro.core.fit_solver import (
    SCHEME_NONE,
    SCHEME_OCEAN,
    SCHEME_SECDED,
    minimum_voltage,
)
from repro.ecc.bch import BchCodec
from repro.mitigation import (
    SCHEME_DECTED,
    DectedRunner,
    OceanRunner,
)
from repro.soc.dma import DmaEngine
from repro.soc.memory import FaultyMemory
from repro.soc.ports import CodecPort, RawPort
from repro.ecc.hamming import SecdedCodec
from repro.ecc.wrapper import UncorrectableError
from repro.workloads.fft import build_fft_program


@pytest.fixture(scope="module")
def program():
    return build_fft_program(64)


@pytest.fixture(scope="module")
def golden(program):
    return program.expected_output(list(program.data_words[:64]))


class TestDected:
    def test_geometry_matches_bch_t2(self):
        codec = BchCodec(data_bits=32, t=2)
        assert codec.code_bits == SCHEME_DECTED.word_bits == 44
        assert SCHEME_DECTED.fail_threshold == 4

    def test_vmin_sits_between_secded_and_ocean(self):
        """The ECC ladder: each correction rung buys voltage."""
        v_none = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_NONE).vdd
        v_sec = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_SECDED).vdd
        v_dec = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_DECTED).vdd
        v_oce = minimum_voltage(ACCESS_CELL_BASED_40NM, SCHEME_OCEAN).vdd
        assert v_none > v_sec > v_dec > v_oce

    def test_corrects_through_faults(self, program, golden):
        for seed in range(3):
            outcome = DectedRunner(ACCESS_CELL_BASED_40NM, seed=seed).run(
                program.workload, vdd=0.39, frequency=290e3
            )
            assert outcome.output_matches(golden)

    def test_survives_forced_double_error(self, program, golden):
        """A double flip in one word kills SECDED but not DECTED."""
        runner = DectedRunner(ACCESS_CELL_BASED_40NM, seed=0)
        platform = runner.build_platform(vdd=0.60)
        platform.load_program(list(program.workload.program_words))
        platform.load_data(list(program.data_words))
        platform.sp.faults.force_next(0b11)  # double error on first access
        completed, failure, _, _ = runner.execute(
            platform, program.workload
        )
        assert completed
        assert failure is None

    def test_storage_overhead_ladder(self):
        """7 -> 12 -> 24 check bits for SECDED -> DECTED -> BCH t=4."""
        assert SecdedCodec().check_bits == 7
        assert BchCodec(data_bits=32, t=2).check_bits == 12
        assert BchCodec(data_bits=32, t=4).check_bits == 24


class TestDmaEngine:
    def test_transfer_copies_words(self):
        src = RawPort(FaultyMemory("A", 32, 32))
        dst = RawPort(FaultyMemory("B", 32, 32))
        src.load(list(range(10)))
        engine = DmaEngine()
        cycles = engine.transfer(src, 0, dst, 0, 10)
        assert [dst.peek(i) for i in range(10)] == list(range(10))
        assert cycles == 8 + 2 * 10
        assert engine.stats.words_moved == 10

    def test_two_phase_commit_on_detected_error(self):
        """A detected error while reading leaves the destination clean."""
        memory = FaultyMemory("A", 8, 39)
        src = CodecPort(memory, SecdedCodec())
        dst = RawPort(FaultyMemory("B", 8, 32))
        src.load([10, 20, 30, 40])
        dst.load([91, 92, 93, 94])
        memory.poke(2, memory.peek(2) ^ 0b101)  # uncorrectable double
        engine = DmaEngine()
        with pytest.raises(UncorrectableError):
            engine.transfer(src, 0, dst, 0, 4)
        assert [dst.peek(i) for i in range(4)] == [91, 92, 93, 94]

    def test_validation(self):
        with pytest.raises(ValueError):
            DmaEngine(cycles_per_word=0)
        with pytest.raises(ValueError):
            DmaEngine(setup_cycles=-1)
        engine = DmaEngine()
        src = RawPort(FaultyMemory("A", 8, 32))
        with pytest.raises(ValueError):
            engine.transfer(src, 0, src, 0, 0)


class TestOceanWithDma:
    def test_dma_cuts_checkpoint_overhead(self, program, golden):
        sw = OceanRunner(
            ACCESS_CELL_BASED_40NM_TYPICAL, seed=2, use_dma=False
        ).run(program.workload, 0.33, 290e3)
        dma = OceanRunner(
            ACCESS_CELL_BASED_40NM_TYPICAL, seed=2, use_dma=True
        ).run(program.workload, 0.33, 290e3)
        assert sw.output_matches(golden)
        assert dma.output_matches(golden)
        assert dma.sim.overhead_cycles < 0.3 * sw.sim.overhead_cycles

    def test_dma_rollback_still_works(self, program, golden):
        outcome = OceanRunner(
            ACCESS_CELL_BASED_40NM, seed=5, use_dma=True
        ).run(program.workload, 0.38, 290e3)
        assert outcome.output_matches(golden)
