"""Tests for the telemetry subsystem (:mod:`repro.obs`).

Covers the contracts the instrumented layers rely on:

* metric snapshots merge *exactly* across process-pool workers;
* span traces are well-formed NDJSON with correct nesting and timing;
* ``sample=0`` tracing allocates no events;
* a seeded campaign's manifest provenance is byte-reproducible;
* the acceptance criterion — a Figure-8-condition campaign's trace
  counters sum exactly to the :class:`CampaignResult` totals, serial
  and fanned out.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import obs
from repro.analysis.campaign import EmptyCampaignError, run_campaign
from repro.cli import run as cli_run
from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.mitigation import OceanRunner, SecdedRunner
from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    NullMetrics,
    NullTracer,
    RunManifest,
    Tracer,
    active_metrics,
    active_tracer,
    scoped_metrics,
)
from repro.soc.profiler import EmptyProfileError, Profile
from repro.workloads.fft import build_fft_program


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with telemetry disabled."""
    obs.disable_metrics()
    obs.disable_tracing()
    yield
    obs.disable_metrics()
    obs.disable_tracing()


@pytest.fixture(scope="module")
def fft32():
    program = build_fft_program(32)
    golden = program.expected_output(list(program.data_words[:32]))
    return program, golden


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_instruments_record(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        reg.timer("t").observe(0.25)
        reg.timer("t").observe(0.75)
        reg.histogram("h").add("LOAD", 3)
        reg.histogram("h").add("ADD")
        snap = reg.snapshot()
        assert snap.counters["c"] == 5
        assert snap.gauges["g"] == 2.5
        assert snap.timers["t"] == {
            "count": 2, "total_s": 1.0, "min_s": 0.25, "max_s": 0.75,
        }
        assert snap.histograms["h"] == {"LOAD": 3, "ADD": 1}

    def test_timer_context_manager(self):
        reg = MetricsRegistry()
        with reg.timer("t").time():
            pass
        snap = reg.snapshot()
        assert snap.timers["t"]["count"] == 1
        assert snap.timers["t"]["total_s"] >= 0.0

    def test_merge_is_exact(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        parent.timer("t").observe(1.0)
        parent.histogram("h").add("x", 2)
        for observed in (0.5, 3.0):
            worker = MetricsRegistry()
            worker.counter("c").inc(7)
            worker.timer("t").observe(observed)
            worker.histogram("h").add("x")
            worker.histogram("h").add("y", 5)
            parent.merge(worker.snapshot())
        snap = parent.snapshot()
        assert snap.counters["c"] == 24
        assert snap.timers["t"] == {
            "count": 3, "total_s": 4.5, "min_s": 0.5, "max_s": 3.0,
        }
        assert snap.histograms["h"] == {"x": 4, "y": 10}

    def test_snapshot_as_dict_sorted_and_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        payload = reg.snapshot().as_dict()
        assert list(payload["counters"]) == ["a", "b"]
        json.dumps(payload)  # must not raise

    def test_null_registry_is_shared_singletons(self):
        null = NullMetrics()
        assert null.counter("a") is null.counter("b")
        assert null.timer("a") is null.timer("b")
        assert not null.enabled
        null.counter("a").inc(5)
        assert null.snapshot().counters == {}

    def test_active_default_is_noop(self):
        assert isinstance(active_metrics(), NullMetrics)
        assert not active_metrics().enabled

    def test_enable_disable_cycle(self):
        reg = obs.enable_metrics()
        assert active_metrics() is reg
        active_metrics().counter("c").inc()
        assert reg.snapshot().counters["c"] == 1
        obs.disable_metrics()
        assert isinstance(active_metrics(), NullMetrics)

    def test_scoped_metrics_restores_previous(self):
        outer = obs.enable_metrics()
        with scoped_metrics() as inner:
            assert active_metrics() is inner
            active_metrics().counter("c").inc()
        assert active_metrics() is outer
        assert inner.snapshot().counters["c"] == 1
        assert "c" not in outer.snapshot().counters


def _pool_worker(n: int) -> "obs.MetricsSnapshot":
    """Count under a scoped registry and ship the snapshot back."""
    with scoped_metrics() as registry:
        registry.counter("worker.items").inc(n)
        registry.histogram("worker.kind").add("even" if n % 2 == 0 else "odd")
    return registry.snapshot()


class TestProcessPoolMerge:
    def test_merge_across_pool_workers_is_exact(self):
        loads = [1, 2, 3, 4, 5, 6]
        parent = MetricsRegistry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_pool_worker, loads):
                parent.merge(snapshot)
        snap = parent.snapshot()
        assert snap.counters["worker.items"] == sum(loads)
        assert snap.histograms["worker.kind"] == {"even": 3, "odd": 3}


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_and_timing(self):
        sink = InMemorySink()
        ticks = iter(range(100))
        tracer = Tracer(sink, clock=lambda: float(next(ticks)))
        with tracer.span("outer", scheme="OCEAN"):
            with tracer.span("inner"):
                tracer.point("p", value=7)
        kinds = [e["kind"] for e in sink.events]
        assert kinds == [
            "span_start", "span_start", "point", "span_end", "span_end",
        ]
        outer_start, inner_start, point, inner_end, outer_end = sink.events
        assert outer_start["parent"] is None
        assert inner_start["parent"] == outer_start["span"]
        assert point["span"] == inner_start["span"]
        assert point["value"] == 7
        assert outer_start["scheme"] == "OCEAN"
        assert inner_end["dur_s"] == inner_end["t"] - inner_start["t"]
        assert outer_end["dur_s"] == outer_end["t"] - outer_start["t"]
        assert outer_end["dur_s"] > inner_end["dur_s"] > 0

    def test_span_end_records_exception(self):
        sink = InMemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        assert sink.events[-1]["kind"] == "span_end"
        assert sink.events[-1]["error"] == "RuntimeError"

    def test_ndjson_file_sink_well_formed(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        tracer = obs.enable_tracing(path)
        with tracer.span("region", n=2):
            tracer.point("p", i=0)
            tracer.point("p", i=1)
        obs.disable_tracing()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == [
            "span_start", "point", "point", "span_end",
        ]
        start, end = records[0], records[-1]
        assert start["span"] == end["span"]
        assert end["dur_s"] >= 0.0

    def test_event_sampling_every_other(self):
        sink = InMemorySink()
        tracer = Tracer(sink, sample=0.5)
        for i in range(10):
            tracer.event("e", i=i)
        assert [e["i"] for e in sink.events] == [1, 3, 5, 7, 9]

    def test_sample_zero_allocates_nothing(self):
        sink = InMemorySink()
        tracer = Tracer(sink, sample=0.0)
        for _ in range(1000):
            tracer.event("e", payload="ignored")
        assert sink.events == []
        assert tracer._event_calls == 0  # short-circuited pre-counting

    def test_sample_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            Tracer(InMemorySink(), sample=1.5)

    def test_null_tracer_is_free(self):
        null = NullTracer()
        span_a = null.span("a", key="value")
        span_b = null.span("b")
        assert span_a is span_b  # one shared no-op context
        with span_a:
            null.point("p")
            null.event("e")
        assert isinstance(active_tracer(), NullTracer)


# ----------------------------------------------------------------------
# Run manifests
# ----------------------------------------------------------------------
def _campaign_manifest(fft32) -> RunManifest:
    program, golden = fft32
    seeds = {"seed_base": 100}
    parameters = {"scheme": "SECDED", "vdd": 0.36, "runs": 3}
    registry = obs.enable_metrics()
    result = run_campaign(
        SecdedRunner,
        workload=program.workload,
        golden=golden,
        access_model=ACCESS_CELL_BASED_40NM,
        vdd=0.36,
        runs=3,
        seed_base=100,
        macro_style="cell-based",
    )
    manifest = RunManifest.capture(
        kind="campaign", name="secded-0v36", seeds=seeds,
        parameters=parameters,
    )
    manifest.results = {
        "correct": result.correct,
        "injected_bits": result.total_injected_bits,
        "corrected": result.total_corrected,
    }
    manifest.add_timing("campaign", 1.23)
    manifest.attach_metrics(registry.snapshot())
    obs.disable_metrics()
    return manifest


class TestRunManifest:
    def test_provenance_byte_reproducible(self, fft32):
        first = _campaign_manifest(fft32).provenance_json()
        second = _campaign_manifest(fft32).provenance_json()
        assert first == second

    def test_provenance_excludes_volatile_fields(self, fft32):
        manifest = _campaign_manifest(fft32)
        provenance = json.loads(manifest.provenance_json())
        assert "created_at" not in provenance
        assert "timings_s" not in provenance
        assert "host_platform" not in provenance
        assert provenance["metric_counters"]["campaign.runs"] == 3

    def test_write_and_reload(self, tmp_path, fft32):
        manifest = _campaign_manifest(fft32)
        path = manifest.write(tmp_path / "manifest.json")
        loaded = json.loads(path.read_text())
        assert loaded["kind"] == "campaign"
        assert loaded["seeds"] == {"seed_base": 100}
        assert loaded["timings_s"]["campaign"] == 1.23
        assert loaded["metrics"]["counters"]["campaign.runs"] == 3


# ----------------------------------------------------------------------
# Acceptance: trace counters sum exactly to CampaignResult totals
# ----------------------------------------------------------------------
class TestCampaignTelemetry:
    @pytest.mark.parametrize(
        "runner_cls, vdd, processes",
        [
            (SecdedRunner, 0.36, None),
            (SecdedRunner, 0.36, 2),
            (OceanRunner, 0.33, 2),
        ],
    )
    def test_trace_sums_match_result(
        self, fft32, runner_cls, vdd, processes
    ):
        program, golden = fft32
        sink = InMemorySink()
        obs.enable_tracing(sink)
        registry = obs.enable_metrics()
        result = run_campaign(
            runner_cls,
            workload=program.workload,
            golden=golden,
            access_model=ACCESS_CELL_BASED_40NM,
            vdd=vdd,
            runs=4,
            seed_base=100,
            processes=processes,
            macro_style="cell-based",
        )
        assert result.total_injected_bits > 0  # campaign saw faults

        outcomes = [
            e for e in sink.events
            if e["kind"] == "point" and e["name"] == "campaign.outcome"
        ]
        assert len(outcomes) == result.runs == 4
        assert sum(o["injected"] for o in outcomes) == (
            result.total_injected_bits
        )
        assert sum(o["corrected"] for o in outcomes) == (
            result.total_corrected
        )
        assert sum(o["rollbacks"] for o in outcomes) == (
            result.total_rollbacks
        )
        correct = sum(o["classification"] == "correct" for o in outcomes)
        assert correct == result.correct

        # The outcome points are nested inside the campaign.run span.
        starts = [e for e in sink.events if e["kind"] == "span_start"]
        campaign_span = next(
            e for e in starts if e["name"] == "campaign.run"
        )
        assert all(o["span"] == campaign_span["span"] for o in outcomes)

        # Worker-layer counters survive the process-pool merge exactly.
        counters = registry.snapshot().counters
        assert counters["campaign.runs"] == result.runs
        assert counters["campaign.injected_bits"] == (
            result.total_injected_bits
        )
        assert counters["campaign.corrected_words"] == (
            result.total_corrected
        )
        assert counters["campaign.rollbacks"] == result.total_rollbacks
        assert counters["faults.injected_bits"] == (
            result.total_injected_bits
        )

    def test_serial_and_fanned_metrics_identical(self, fft32):
        program, golden = fft32
        totals = {}
        for processes in (None, 2):
            registry = obs.enable_metrics()
            run_campaign(
                SecdedRunner,
                workload=program.workload,
                golden=golden,
                access_model=ACCESS_CELL_BASED_40NM,
                vdd=0.36,
                runs=4,
                seed_base=100,
                processes=processes,
                macro_style="cell-based",
            )
            totals[processes] = registry.snapshot().counters
            obs.disable_metrics()
        assert totals[None] == totals[2]


# ----------------------------------------------------------------------
# Typed empty errors
# ----------------------------------------------------------------------
class TestTypedErrors:
    def test_empty_campaign_error_carries_context(self):
        from repro.analysis.campaign import CampaignResult

        empty = CampaignResult(scheme="OCEAN", vdd=0.33)
        with pytest.raises(EmptyCampaignError) as excinfo:
            empty.failure_rate
        assert excinfo.value.statistic == "failure_rate"
        assert excinfo.value.scheme == "OCEAN"
        assert excinfo.value.vdd == 0.33
        assert "OCEAN" in str(excinfo.value)
        assert "0.330" in str(excinfo.value)
        assert isinstance(excinfo.value, ValueError)  # back-compat
        with pytest.raises(EmptyCampaignError):
            empty.silent_rate

    def test_empty_profile_error(self):
        profile = Profile()
        with pytest.raises(EmptyProfileError) as excinfo:
            profile.fraction("LOAD")
        assert isinstance(excinfo.value, ValueError)


# ----------------------------------------------------------------------
# CLI integration (--json / --metrics / --trace)
# ----------------------------------------------------------------------
class TestCliObservability:
    def test_table2_json_parses(self):
        payload = json.loads(cli_run(["table2", "--json"]))
        rows = payload["table2"]
        assert {"scheme", "vdd_model", "vdd_paper"} <= set(rows[0])
        schemes = {row["scheme"] for row in rows}
        assert {"none", "SECDED", "OCEAN"} <= schemes

    def test_claims_json_with_metrics(self):
        payload = json.loads(
            cli_run(["claims", "--fft", "16", "--json", "--metrics"])
        )
        assert payload["claims"]["power_ratio_vs_none"] > 1.0
        counters = payload["metrics"]["counters"]
        assert counters["platform.runs"] == 3

    def test_fig8_trace_written(self, tmp_path):
        path = tmp_path / "fig8.ndjson"
        cli_run(["fig8", "--fft", "16", "--trace", str(path)])
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        names = {r["name"] for r in records}
        assert "cli.exhibit" in names
        assert "study.scheme_run" in names
        outcomes = [
            r for r in records if r["name"] == "study.scheme_outcome"
        ]
        assert {o["scheme"] for o in outcomes} == {
            "none", "SECDED", "OCEAN",
        }

    def test_text_mode_metrics_footer(self):
        text = cli_run(["claims", "--fft", "16", "--metrics"])
        assert "== metrics ==" in text
        assert "platform.runs = 3" in text
