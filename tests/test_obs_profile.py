"""Unit and property tests for the engine-profiling observability layer.

Covers the pieces the engine-level fuzzers do not: the bucket helpers
and active-profiler plumbing (:mod:`repro.obs.profile`), the exact
cross-process shard-merge property the profiler inherits from the
metrics registry, span aggregation and profile rendering
(:mod:`repro.obs.report`), live campaign progress and its NDJSON
heartbeat, the trace-sink flush lifecycle on abnormal exits, and the
perf-history append/compare trajectory (:mod:`repro.obs.perfhistory`).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import names
from repro.obs.metrics import MetricsRegistry, scoped_metrics
from repro.obs.perfhistory import (
    append_history,
    compare,
    flatten_report,
    format_comparison,
    load_history,
    lower_is_better,
    parse_threshold,
)
from repro.obs.perfhistory import main as perf_compare_main
from repro.obs.profile import (
    NULL_PROFILER,
    EngineProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    pow2_bucket,
    ratio_bucket,
    scoped_profiling,
)
from repro.obs.report import (
    CampaignProgress,
    JournalLiveness,
    aggregate_spans,
    aggregate_trace_file,
    format_cost_tree,
    read_ndjson,
    render_profile,
)
from repro.obs.trace import NdjsonFileSink, Tracer
from repro.resilience import ChaosPolicy, ResilientExecutor, TaskSpec


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_metrics()
    obs.disable_tracing()
    disable_profiling()
    yield
    obs.disable_metrics()
    obs.disable_tracing()
    disable_profiling()


# ----------------------------------------------------------------------
# Bucket helpers
# ----------------------------------------------------------------------
class TestBuckets:
    @pytest.mark.parametrize(
        "n, bucket",
        [
            (0, "0"),
            (1, "1"),
            (2, "2-3"),
            (3, "2-3"),
            (4, "4-7"),
            (7, "4-7"),
            (8, "8-15"),
            (1000, "512-1023"),
        ],
    )
    def test_pow2_bucket(self, n, bucket):
        assert pow2_bucket(n) == bucket

    @given(n=st.integers(min_value=0, max_value=10**6))
    def test_pow2_bucket_contains_its_value(self, n):
        bucket = pow2_bucket(n)
        if "-" in bucket:
            low, high = (int(part) for part in bucket.split("-"))
        else:
            low = high = int(bucket)
        assert low <= n <= high

    @pytest.mark.parametrize(
        "part, whole, bucket",
        [
            (0, 4, "0-10%"),
            (1, 2, "50-60%"),
            (4, 4, "90-100%"),
            (3, 4, "70-80%"),
            (0, 0, "0-10%"),  # degenerate whole
        ],
    )
    def test_ratio_bucket(self, part, whole, bucket):
        assert ratio_bucket(part, whole) == bucket

    @given(
        part=st.integers(min_value=0, max_value=64),
        whole=st.integers(min_value=1, max_value=64),
    )
    def test_ratio_bucket_is_a_valid_decile(self, part, whole):
        bucket = ratio_bucket(min(part, whole), whole)
        low = int(bucket.split("-")[0])
        assert 0 <= low <= 90 and low % 10 == 0


# ----------------------------------------------------------------------
# Active-profiler plumbing
# ----------------------------------------------------------------------
class TestActiveProfiler:
    def test_default_is_free_null_singleton(self):
        assert active_profiler() is NULL_PROFILER
        assert not active_profiler().enabled
        # Null recording is safe with no registry enabled.
        NULL_PROFILER.record_burst(3, 5)
        NULL_PROFILER.record_simd_service(1, 1, {}, {}, {}, {})

    def test_enable_disable_cycle(self):
        profiler = enable_profiling()
        assert active_profiler() is profiler
        assert profiler.enabled
        disable_profiling()
        assert active_profiler() is NULL_PROFILER

    def test_scoped_profiling_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with scoped_profiling() as profiler:
                assert active_profiler() is profiler
                raise RuntimeError("boom")
        assert active_profiler() is NULL_PROFILER

    def test_recording_into_null_metrics_is_lost_not_fatal(self):
        # Enabled profiler + disabled metrics: writes vanish quietly.
        with scoped_profiling() as profiler:
            profiler.record_burst(4, 6)
            profiler.record_opcodes({"ADD": 4})


# ----------------------------------------------------------------------
# Recording semantics
# ----------------------------------------------------------------------
class TestProfilerRecording:
    def _record(self, fn):
        registry = MetricsRegistry()
        with scoped_metrics(registry):
            fn(EngineProfiler())
        return registry.snapshot()

    def test_zero_length_burst_measures_slow_path_pressure(self):
        snap = self._record(lambda p: p.record_burst(0, 0))
        assert snap.counters[names.PROFILE_BURSTS] == 1
        assert names.PROFILE_FAST_INSTRUCTIONS not in snap.counters
        assert snap.histograms[names.PROFILE_BURST_LENGTH] == {"0": 1}

    def test_burst_tallies_fast_path(self):
        snap = self._record(lambda p: p.record_burst(5, 9))
        assert snap.counters[names.PROFILE_FAST_INSTRUCTIONS] == 5
        assert snap.counters[names.PROFILE_FAST_CYCLES] == 9
        assert snap.histograms[names.PROFILE_BURST_LENGTH] == {"4-7": 1}

    def test_empty_slow_path_record_is_skipped(self):
        snap = self._record(lambda p: p.record_slow_path(0, 0))
        assert names.PROFILE_SLOW_INSTRUCTIONS not in snap.counters

    def test_settlement_and_writeback(self):
        def record(p):
            p.record_settlement(3, 2)
            p.record_settlement(0, 0)
            p.record_writeback(8, batched=True)
            p.record_writeback(1, batched=False)

        snap = self._record(record)
        assert snap.counters[names.PROFILE_SETTLEMENTS] == 2
        assert snap.counters[names.PROFILE_SETTLED_READS] == 3
        assert snap.counters[names.PROFILE_SETTLED_WRITES] == 2
        assert snap.counters[names.PROFILE_WRITEBACK_WORDS] == 9
        assert snap.counters[names.PROFILE_WRITEBACK_BATCHES] == 1

    def test_simd_service_folds_lane_histograms(self):
        def record(p):
            p.record_simd_service(
                rounds=2,
                vector_instructions=6,
                occupancy={"2-3": 1, "4-7": 1},
                density={"90-100%": 2},
                divergence={"1": 2},
                depth={"0": 2},
                vector_cycles=7,
            )

        snap = self._record(record)
        assert snap.counters[names.PROFILE_SIMD_ROUNDS] == 2
        assert snap.counters[names.PROFILE_FAST_INSTRUCTIONS] == 6
        assert snap.counters[names.PROFILE_FAST_CYCLES] == 7
        assert snap.histograms[names.PROFILE_LANE_OCCUPANCY] == {
            "2-3": 1,
            "4-7": 1,
        }
        assert snap.histograms[names.PROFILE_MASK_DENSITY] == {
            "90-100%": 2
        }


# ----------------------------------------------------------------------
# Shard-merge property: K worker shards merge == one process
# ----------------------------------------------------------------------
def _profiler_events():
    burst = st.tuples(
        st.just("burst"), st.integers(0, 64), st.integers(0, 256)
    )
    slow = st.tuples(
        st.just("slow"), st.integers(0, 64), st.integers(0, 256)
    )
    settle = st.tuples(
        st.just("settle"), st.integers(0, 8), st.integers(0, 8)
    )
    writeback = st.tuples(
        st.just("writeback"), st.integers(0, 32), st.booleans()
    )
    # (occupied, active) per service round.
    simd = st.tuples(
        st.just("simd"),
        st.lists(
            st.tuples(st.integers(0, 8), st.integers(1, 8)),
            min_size=1,
            max_size=6,
        ),
    )
    opcodes = st.tuples(
        st.just("opcodes"),
        st.dictionaries(
            st.sampled_from(["ADD", "LD", "ST", "BNE"]),
            st.integers(1, 40),
            max_size=4,
        ),
    )
    return st.one_of(burst, slow, settle, writeback, simd, opcodes)


def _replay(profiler, event):
    kind = event[0]
    if kind == "burst":
        profiler.record_burst(event[1], event[2])
    elif kind == "slow":
        profiler.record_slow_path(event[1], event[2])
    elif kind == "settle":
        profiler.record_settlement(event[1], event[2])
    elif kind == "writeback":
        profiler.record_writeback(event[1], event[2])
    elif kind == "opcodes":
        profiler.record_opcodes(event[1])
    else:
        occupancy, density, divergence, depth = {}, {}, {}, {}
        vector_instructions = 0
        for occupied, active in event[1]:
            occupied = min(occupied, active)
            for table, bucket in (
                (occupancy, pow2_bucket(occupied)),
                (density, ratio_bucket(occupied, active)),
                (divergence, pow2_bucket(active - occupied + 1)),
                (depth, pow2_bucket(4 * (active - occupied))),
            ):
                table[bucket] = table.get(bucket, 0) + 1
            vector_instructions += occupied
        profiler.record_simd_service(
            len(event[1]),
            vector_instructions,
            occupancy,
            density,
            divergence,
            depth,
            vector_cycles=vector_instructions,
        )


class TestShardMergeProperty:
    @given(
        events=st.lists(_profiler_events(), max_size=30),
        shard_of=st.lists(st.integers(0, 3), max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_merged_shards_match_single_process(self, events, shard_of):
        """Partitioning profiler events across K worker registries and
        merging their snapshots yields exactly the single-process
        registry — including the SIMD lane-occupancy histograms."""
        profiler = EngineProfiler()
        single = MetricsRegistry()
        with scoped_metrics(single):
            for event in events:
                _replay(profiler, event)

        shards = {}
        for index, event in enumerate(events):
            shard = shard_of[index] if index < len(shard_of) else 0
            registry = shards.setdefault(shard, MetricsRegistry())
            with scoped_metrics(registry):
                _replay(profiler, event)
        merged = MetricsRegistry()
        for registry in shards.values():
            merged.merge(registry.snapshot())

        got, want = merged.snapshot(), single.snapshot()
        assert got.counters == want.counters
        assert got.histograms == want.histograms


# ----------------------------------------------------------------------
# Span aggregation and profile rendering
# ----------------------------------------------------------------------
def _span_records():
    return [
        {"kind": "span_start", "name": "campaign", "span": 1,
         "parent": None, "t": 0.0},
        {"kind": "span_start", "name": "run", "span": 2, "parent": 1,
         "t": 1.0},
        {"kind": "point", "name": "outcome", "span": 2, "t": 1.5},
        {"kind": "span_end", "name": "run", "span": 2, "t": 3.0,
         "dur_s": 2.0},
        {"kind": "span_start", "name": "run", "span": 3, "parent": 1,
         "t": 3.0},
        {"kind": "span_end", "name": "run", "span": 3, "t": 4.0,
         "dur_s": 1.0, "error": "ValueError"},
        {"kind": "span_end", "name": "campaign", "span": 1, "t": 5.0,
         "dur_s": 5.0},
    ]


class TestSpanAggregation:
    def test_same_named_spans_merge_under_parent(self):
        root = aggregate_spans(_span_records())
        campaign = root.children["campaign"]
        assert campaign.count == 1
        assert campaign.total_s == pytest.approx(5.0)
        run = campaign.children["run"]
        assert run.count == 2
        assert run.total_s == pytest.approx(3.0)
        assert run.errors == 1
        assert run.points == {"outcome": 1}
        assert campaign.self_s == pytest.approx(2.0)

    def test_torn_trace_unclosed_span_still_counted(self):
        records = _span_records()[:2]  # two starts, no ends
        root = aggregate_spans(records)
        campaign = root.children["campaign"]
        assert campaign.count == 1
        assert campaign.total_s == 0.0
        assert campaign.children["run"].count == 1

    def test_orphan_span_attaches_to_root(self):
        records = [
            {"kind": "span_end", "name": "lost", "span": 99,
             "dur_s": 1.0},
            {"kind": "point", "name": "stray", "span": 99},
        ]
        root = aggregate_spans(records)
        # Parentless records credit the synthetic root, not a crash.
        assert root.count == 1
        assert root.points == {"stray": 1}

    def test_format_cost_tree_renders_hierarchy(self):
        text = format_cost_tree(aggregate_spans(_span_records()))
        assert "== cost tree ==" in text
        assert "campaign" in text and "run  x2" in text
        assert "· outcome x1" in text
        assert "errors=1" in text

    def test_format_cost_tree_empty(self):
        assert "(no spans)" in format_cost_tree(aggregate_spans([]))

    def test_aggregate_trace_file_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        lines = [json.dumps(r) for r in _span_records()]
        path.write_text(
            "\n".join(lines) + '\n{"kind": "span_end", "sp',
            encoding="utf-8",
        )
        root = aggregate_trace_file(path)
        assert root.children["campaign"].children["run"].count == 2

    def test_read_ndjson_missing_file_is_empty(self, tmp_path):
        assert read_ndjson(tmp_path / "absent.ndjson") == []


class TestRenderProfile:
    def test_empty_snapshot_falls_back(self):
        text = render_profile(MetricsRegistry().snapshot())
        assert "no profiler data" in text

    def test_sections_render(self):
        registry = MetricsRegistry()
        with scoped_metrics(registry), scoped_profiling() as profiler:
            profiler.record_engine("fastlane")
            profiler.record_opcodes({"ADD": 10, "BNE": 2})
            profiler.record_burst(5, 9)
            profiler.record_slow_path(2, 4)
        text = render_profile(registry.snapshot())
        assert "== engine profile ==" in text
        assert "ADD" in text
        assert "fast-path" in text and "slow-path" in text
        assert "burst length" in text


# ----------------------------------------------------------------------
# Live campaign progress
# ----------------------------------------------------------------------
class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCampaignProgress:
    def test_eta_from_mean_duration(self):
        progress = CampaignProgress(clock=_FakeClock())
        progress.on_start(total=6, resumed=0, workers=2)
        assert progress.eta_seconds() is None
        progress.on_task("a", 2.0)
        progress.on_task("b", 4.0)
        # mean 3s x 4 remaining / 2 workers
        assert progress.eta_seconds() == pytest.approx(6.0)
        assert progress.remaining == 4
        text = progress.render()
        assert "2/6 done" in text and "ETA" in text

    def test_quarantine_counts_toward_done(self):
        progress = CampaignProgress()
        progress.on_start(total=2, resumed=0, workers=1)
        progress.on_task("ok", 1.0)
        progress.on_quarantine("poison")
        assert progress.done == 2
        assert progress.quarantined == 1
        assert "1 quarantined" in progress.render()

    def test_resumed_head_start(self):
        progress = CampaignProgress()
        progress.on_start(total=4, resumed=3, workers=1)
        assert progress.done == 3
        assert progress.remaining == 1

    def test_heartbeat_records_and_torn_tail(self, tmp_path):
        beat = tmp_path / "hb.ndjson"
        progress = CampaignProgress(heartbeat=beat)
        progress.on_start(total=2, resumed=0, workers=1)
        progress.on_task("a", 0.5)
        progress.on_task("b", 0.5)
        progress.close()
        records = read_ndjson(beat)
        assert [r["kind"] for r in records] == ["start", "task", "task"]
        assert "eta_s" not in records[0]  # no durations yet
        assert records[1]["eta_s"] == pytest.approx(0.5)
        assert records[-1]["done"] == 2
        with open(beat, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "task"')  # SIGKILL mid-write
        assert read_ndjson(beat) == records

    def test_on_update_hook_sees_live_state(self):
        seen = []
        progress = CampaignProgress(
            on_update=lambda p: seen.append((p.done, p.total))
        )
        progress.on_start(total=2, resumed=0, workers=1)
        progress.on_task("a", 0.1)
        assert seen == [(0, 2), (1, 2)]


class TestJournalLiveness:
    def test_missing_journal_probes_unknown(self, tmp_path):
        probe = JournalLiveness(tmp_path / "none.ndjson").probe()
        assert probe == {
            "exists": False,
            "alive": None,
            "age_s": None,
            "completed": 0,
            "quarantined": 0,
        }

    def test_fresh_journal_is_alive(self, tmp_path):
        path = tmp_path / "hb.ndjson"
        progress = CampaignProgress(heartbeat=path)
        progress.on_start(total=3, resumed=0, workers=1)
        progress.on_task("a", 0.1)
        progress.on_quarantine("b")
        progress.close()
        probe = JournalLiveness(path, stale_after_s=3600.0).probe()
        assert probe["exists"] and probe["alive"]
        assert probe["completed"] == 1
        assert probe["quarantined"] == 1

    def test_stale_journal_is_dead(self, tmp_path):
        import os

        path = tmp_path / "hb.ndjson"
        path.write_text('{"kind": "task"}\n', encoding="utf-8")
        stat = os.stat(path)
        os.utime(path, (stat.st_atime, stat.st_mtime - 7200))
        probe = JournalLiveness(path, stale_after_s=60.0).probe()
        assert probe["exists"] and probe["alive"] is False
        assert probe["age_s"] >= 7000


# ----------------------------------------------------------------------
# Executor integration: progress hooks and abnormal-exit trace flush
# ----------------------------------------------------------------------
class _RecordingSink:
    def __init__(self):
        self.events = []
        self.flushes = 0
        self.closed = False

    def emit(self, record):
        self.events.append(record)

    def flush(self):
        self.flushes += 1

    def close(self):
        self.closed = True


class _LegacySink:
    """A sink predating ``TraceSink.flush`` — no flush attribute."""

    def __init__(self):
        self.events = []

    def emit(self, record):
        self.events.append(record)

    def close(self):
        pass


def _echo_task(x):
    return x


def _interruptible_task(x):
    if x == "boom":
        raise KeyboardInterrupt
    return x


class TestExecutorObservability:
    def test_progress_hooks_fire_per_task(self, tmp_path):
        beat = tmp_path / "hb.ndjson"
        progress = CampaignProgress(heartbeat=beat)
        executor = ResilientExecutor(_echo_task)
        tasks = [TaskSpec(key=f"k{i}", args=(i,)) for i in range(3)]
        report = executor.run(
            tasks, run_id="prog", fingerprint="f", progress=progress
        )
        progress.close()
        assert report.complete
        assert (progress.done, progress.total) == (3, 3)
        records = read_ndjson(beat)
        assert [r["kind"] for r in records] == [
            "start", "task", "task", "task",
        ]
        assert all(
            r["seconds"] >= 0.0 for r in records if r["kind"] == "task"
        )

    def test_progress_counts_quarantine(self):
        progress = CampaignProgress()
        chaos = ChaosPolicy(raise_in_task=[("k1", 1)])
        executor = ResilientExecutor(
            _echo_task, max_retries=0, backoff_base_s=0.0, chaos=chaos
        )
        tasks = [TaskSpec(key=f"k{i}", args=(i,)) for i in range(3)]
        report = executor.run(
            tasks, run_id="quar", fingerprint="f", progress=progress
        )
        assert report.quarantined == {"k1": "ChaosError"}
        assert progress.done == 3
        assert progress.quarantined == 1

    def test_keyboard_interrupt_flushes_trace(self):
        sink = _RecordingSink()
        obs.enable_tracing(sink)
        executor = ResilientExecutor(_interruptible_task)
        tasks = [
            TaskSpec(key="ok", args=("ok",)),
            TaskSpec(key="boom", args=("boom",)),
        ]
        with pytest.raises(KeyboardInterrupt):
            executor.run(tasks, run_id="kbint", fingerprint="f")
        assert sink.flushes >= 1
        assert not sink.closed  # flushed durable, stream still open
        obs.disable_tracing()
        assert sink.closed

    def test_pool_worker_death_flushes_trace(self):
        sink = _RecordingSink()
        obs.enable_tracing(sink)
        chaos = ChaosPolicy(kill=[("k1", 1)])
        executor = ResilientExecutor(
            _echo_task, processes=2, backoff_base_s=0.0, chaos=chaos
        )
        tasks = [TaskSpec(key=f"k{i}", args=(i,)) for i in range(3)]
        report = executor.run(tasks, run_id="break", fingerprint="f")
        assert report.complete
        assert report.pool_breaks >= 1
        assert sink.flushes >= 1

    def test_tracer_flush_tolerates_legacy_sink(self):
        tracer = Tracer(_LegacySink())
        tracer.flush()  # must not raise
        with tracer.span("phase"):
            pass
        assert tracer.sink.events[-1]["kind"] == "span_end"


class TestNdjsonFileSink:
    def test_flush_without_close_keeps_stream_open(self, tmp_path):
        path = tmp_path / "out.ndjson"
        sink = NdjsonFileSink(path)
        sink.emit({"a": 1})
        sink.flush()
        assert read_ndjson(path) == [{"a": 1}]
        sink.emit({"a": 2})  # still writable after flush
        sink.close()
        assert read_ndjson(path) == [{"a": 1}, {"a": 2}]
        sink.close()  # idempotent


# ----------------------------------------------------------------------
# Perf history and regression comparison
# ----------------------------------------------------------------------
def _report(encode_speedup=30.0, batch_s=0.1, quick=False):
    return {
        "quick": quick,
        "all_checks_passed": True,
        "secded": {
            "encode_speedup": encode_speedup,
            "encode_batch_s": batch_s,
        },
        "platform": {
            "schemes": {"secded": {"speedup": 5.0, "fast_lane_s": 0.2}}
        },
        "simd": {
            "configs": [
                {"lanes": 4, "speedup_vs_scalar": 3.0, "lockstep_s": 0.4}
            ]
        },
        "profile": {"overhead_pct": 1.0, "bit_exact": True},
    }


class TestPerfHistory:
    def test_flatten_report_lifts_scalars_only(self):
        sections = flatten_report(_report())
        assert sections["secded.encode_speedup"] == 30.0
        assert sections["platform.secded.speedup"] == 5.0
        assert sections["simd.N4.speedup_vs_scalar"] == 3.0
        assert sections["profile.overhead_pct"] == 1.0
        # bools and missing sections never leak in
        assert not any("bit_exact" in key for key in sections)

    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "hist.ndjson"
        entry = append_history(path, _report())
        assert entry["quick"] is False
        append_history(path, _report(quick=True))
        entries = load_history(path)
        assert len(entries) == 2
        assert entries[0]["sections"]["secded.encode_speedup"] == 30.0
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": 1, "sect')  # torn tail
        assert len(load_history(path)) == 2

    def test_direction_convention(self):
        assert lower_is_better("secded.encode_batch_s")
        assert lower_is_better("simd.N4.lockstep_s")
        assert not lower_is_better("secded.encode_speedup")
        assert not lower_is_better("profile.overhead_pct")

    def _entries(self, *reports):
        return [
            {
                "quick": bool(report.get("quick", False)),
                "sections": flatten_report(report),
            }
            for report in reports
        ]

    def test_speedup_drop_is_a_regression(self):
        entries = self._entries(
            _report(30.0), _report(30.0), _report(20.0)
        )
        result = compare(entries, max_regression=0.25)
        assert "secded.encode_speedup" in result["regressions"]

    def test_walltime_rise_is_a_regression(self):
        entries = self._entries(
            _report(batch_s=0.1), _report(batch_s=0.1),
            _report(batch_s=0.2),
        )
        result = compare(entries, max_regression=0.25)
        assert "secded.encode_batch_s" in result["regressions"]
        # the improvement directions never fire
        assert "secded.encode_speedup" not in result["regressions"]

    def test_improvements_are_not_regressions(self):
        entries = self._entries(
            _report(30.0, batch_s=0.2), _report(30.0, batch_s=0.2),
            _report(60.0, batch_s=0.05),
        )
        result = compare(entries, max_regression=0.25)
        assert result["regressions"] == []

    def test_quick_entries_never_baseline_full_runs(self):
        entries = self._entries(
            _report(100.0, quick=True),  # quick smoke: excluded
            _report(30.0),
            _report(29.0),
        )
        result = compare(entries, max_regression=0.25)
        assert result["baseline_entries"] == 1
        assert result["comparable"] == 2
        assert result["regressions"] == []

    def test_parse_threshold(self):
        assert parse_threshold("25%") == pytest.approx(0.25)
        assert parse_threshold("0.1") == pytest.approx(0.1)
        with pytest.raises(ValueError):
            parse_threshold("-0.5")

    def test_format_comparison_marks_regressions(self):
        entries = self._entries(
            _report(30.0), _report(30.0), _report(10.0)
        )
        text = format_comparison(
            compare(entries, max_regression=0.25), 0.25
        )
        assert "REGRESSED" in text
        assert "secded.encode_speedup" in text

    def test_cli_soft_gate_below_min_entries(self, tmp_path, capsys):
        path = tmp_path / "hist.ndjson"
        append_history(path, _report(10.0))  # regression vs nothing
        code = perf_compare_main(["--history", str(path)])
        assert code == 0
        assert "soft gate" in capsys.readouterr().out

    def test_cli_fails_on_regression_once_armed(self, tmp_path, capsys):
        path = tmp_path / "hist.ndjson"
        for speedup in (30.0, 30.0, 10.0):
            append_history(path, _report(speedup))
        code = perf_compare_main(
            ["--history", str(path), "--max-regression", "25%"]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_cli_passes_when_stable(self, tmp_path):
        path = tmp_path / "hist.ndjson"
        for _ in range(3):
            append_history(path, _report())
        code = perf_compare_main(["--history", str(path)])
        assert code == 0

    def test_cli_json_output(self, tmp_path, capsys):
        path = tmp_path / "hist.ndjson"
        for _ in range(3):
            append_history(path, _report())
        assert perf_compare_main(
            ["--history", str(path), "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["regressions"] == []
        assert document["comparable"] == 3
