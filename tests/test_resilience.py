"""Unit tests for :mod:`repro.resilience` — executor, journal, chaos.

These pin the building blocks in isolation (pure-python task
functions, no simulator): retry/quarantine accounting, deterministic
backoff, journal write/resume round-trips including torn tails and
fingerprint mismatches, and the chaos policy's rule normalisation.
The end-to-end campaign proofs live in ``test_resilience_chaos.py``.
"""

import json
import os

import pytest

from repro import obs
from repro.resilience import (
    ChaosError,
    ChaosPolicy,
    CheckpointJournal,
    JournalError,
    JournalMismatchError,
    NO_CHAOS,
    ResilientExecutor,
    TaskSpec,
    WorkerKilled,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_metrics()
    obs.disable_tracing()
    yield
    obs.disable_metrics()
    obs.disable_tracing()


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"boom {x}")


def _tasks(n):
    return [TaskSpec(key=f"t{i}", args=(i,)) for i in range(n)]


class TestTaskSpec:
    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            TaskSpec(key="", args=())

    def test_duplicate_keys_rejected_at_run(self):
        executor = ResilientExecutor(_square)
        tasks = [TaskSpec("a", (1,)), TaskSpec("a", (2,))]
        with pytest.raises(ValueError):
            executor.run(tasks, run_id="r", fingerprint="f")


class TestSerialExecution:
    def test_results_in_submission_order(self):
        report = ResilientExecutor(_square).run(
            _tasks(5), run_id="r", fingerprint="f"
        )
        assert report.result_list() == [0, 1, 4, 9, 16]
        assert report.complete
        assert report.executed == 5
        assert report.retries == 0

    def test_poison_task_quarantined_not_fatal(self):
        executor = ResilientExecutor(
            _boom, max_retries=2, backoff_base_s=0.0
        )
        report = executor.run(_tasks(1), run_id="r", fingerprint="f")
        assert not report.complete
        assert report.quarantined == {"t0": "RuntimeError"}
        assert report.retries == 2  # 1 + max_retries attempts total

    def test_transient_failure_recovers(self):
        chaos = ChaosPolicy(raise_in_task=[("t1", 1), ("t1", 2)])
        executor = ResilientExecutor(
            _square, max_retries=3, backoff_base_s=0.0, chaos=chaos
        )
        report = executor.run(_tasks(3), run_id="r", fingerprint="f")
        assert report.complete
        assert report.result_list() == [0, 1, 4]
        assert report.retries == 2

    def test_serial_kill_rule_degrades_to_exception(self):
        chaos = ChaosPolicy(kill=[("t0", 1)])
        executor = ResilientExecutor(
            _square, max_retries=1, backoff_base_s=0.0, chaos=chaos
        )
        report = executor.run(_tasks(1), run_id="r", fingerprint="f")
        assert report.complete
        assert report.retries == 1

    def test_metrics_counters_emitted(self):
        registry = obs.enable_metrics()
        chaos = ChaosPolicy(raise_in_task=[("t0", 1)])
        ResilientExecutor(
            _square, max_retries=1, backoff_base_s=0.0, chaos=chaos
        ).run(_tasks(2), run_id="r", fingerprint="f")
        counters = registry.snapshot().counters
        assert counters["resilience.tasks"] == 2
        assert counters["resilience.tasks_completed"] == 2
        assert counters["resilience.retries"] == 1
        assert counters["resilience.task_failures"] == 1


class TestBackoff:
    def test_deterministic_exponential_schedule(self):
        executor = ResilientExecutor(
            _square, backoff_base_s=0.05, backoff_cap_s=0.4
        )
        delays = []
        for attempt_number in range(1, 7):
            attempt = type("A", (), {"attempt": attempt_number})()
            start = __import__("time").monotonic()
            executor._sleep_backoff(attempt)
            delays.append(__import__("time").monotonic() - start)
        # Attempt 1 pays nothing; then 0.05, 0.1, 0.2, 0.4, 0.4 (cap).
        assert delays[0] < 0.02
        assert 0.04 <= delays[1] < 0.09
        assert 0.09 <= delays[2] < 0.18
        assert 0.18 <= delays[3] < 0.36
        assert 0.36 <= delays[4]
        assert delays[5] < 0.5  # capped, not 0.8

    def test_zero_base_disables_sleeping(self):
        executor = ResilientExecutor(_square, backoff_base_s=0.0)
        attempt = type("A", (), {"attempt": 5})()
        start = __import__("time").monotonic()
        executor._sleep_backoff(attempt)
        assert __import__("time").monotonic() - start < 0.02


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ResilientExecutor(_square, max_retries=-1)
        with pytest.raises(ValueError):
            ResilientExecutor(_square, task_timeout=0.0)
        with pytest.raises(ValueError):
            ResilientExecutor(_square, backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            ResilientExecutor(_square, max_pool_breaks=-1)


class TestJournal:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with CheckpointJournal(path, "run", "fp") as journal:
            journal.record_task("t0", 1, {"x": 1})
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert lines[0]["kind"] == "header"
        assert lines[0]["fingerprint"] == "fp"
        assert lines[1] == {
            "kind": "task", "key": "t0", "attempt": 1, "result": {"x": 1}
        }

    def test_resume_recovers_completed_tasks(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with CheckpointJournal(path, "run", "fp") as journal:
            journal.record_task("t0", 1, 10)
            journal.record_quarantine("t1", 4, "RuntimeError")
        resumed = CheckpointJournal(path, "run", "fp")
        assert resumed.resumed
        assert resumed.state.completed == {"t0": 10}
        assert resumed.state.quarantined == {"t1": "RuntimeError"}
        resumed.close()

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with CheckpointJournal(path, "run", "fp") as journal:
            journal.record_task("t0", 1, 10)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "key": "t1", "resu')
        resumed = CheckpointJournal(path, "run", "fp")
        assert resumed.state.completed == {"t0": 10}
        resumed.close()

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        CheckpointJournal(path, "run", "fp-a").close()
        with pytest.raises(JournalMismatchError) as excinfo:
            CheckpointJournal(path, "run", "fp-b")
        assert excinfo.value.expected == "fp-b"
        assert excinfo.value.found == "fp-a"

    def test_headerless_file_refused(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "key": "t0", "result": 1}\n')
        with pytest.raises(JournalError):
            CheckpointJournal(path, "run", "fp")


class TestExecutorJournalIntegration:
    def test_checkpoint_and_resume_skips_completed(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        first = ResilientExecutor(_square).run(
            _tasks(3), run_id="r", fingerprint="f", journal=path
        )
        assert first.checkpoints == 3
        second = ResilientExecutor(_square).run(
            _tasks(6), run_id="r", fingerprint="f", journal=path
        )
        assert second.resumed == 3
        assert second.executed == 3
        assert second.result_list() == [0, 1, 4, 9, 16, 25]

    def test_resumed_results_pass_through_decode(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        encode = lambda v: {"value": v}  # noqa: E731
        decode = lambda d: d["value"]  # noqa: E731
        ResilientExecutor(_square, encode=encode, decode=decode).run(
            _tasks(2), run_id="r", fingerprint="f", journal=path
        )
        resumed = ResilientExecutor(
            _square, encode=encode, decode=decode
        ).run(_tasks(2), run_id="r", fingerprint="f", journal=path)
        assert resumed.result_list() == [0, 1]
        assert resumed.executed == 0

    def test_quarantined_task_retried_on_resume(self, tmp_path):
        path = str(tmp_path / "j.ndjson")
        poisoned = ResilientExecutor(
            _square,
            max_retries=0,
            backoff_base_s=0.0,
            chaos=ChaosPolicy(raise_in_task=[("t0", 1)]),
        ).run(_tasks(1), run_id="r", fingerprint="f", journal=path)
        assert poisoned.quarantined
        # The transient cause is gone: the resume gives it a new chance.
        recovered = ResilientExecutor(_square).run(
            _tasks(1), run_id="r", fingerprint="f", journal=path
        )
        assert recovered.complete
        assert recovered.result_list() == [0]


class TestChaosPolicy:
    def test_no_chaos_is_empty(self):
        assert NO_CHAOS.empty
        NO_CHAOS.apply("任意", 1, in_worker_process=False)  # no-op

    def test_rules_normalised_and_hashable(self):
        policy = ChaosPolicy(
            kill=[("a", 1)], raise_in_task=(("b", 2),),
            delay={("c", 1): 0.5},
        )
        assert ("a", 1) in policy.kill
        assert ("b", 2) in policy.raise_in_task
        assert dict(policy.delay) == {("c", 1): 0.5}
        assert not policy.empty
        hash(policy)  # frozen → usable as a key

    def test_raise_rule_fires_only_on_its_attempt(self):
        policy = ChaosPolicy(raise_in_task=[("t", 2)])
        policy.apply("t", 1, in_worker_process=False)
        with pytest.raises(ChaosError):
            policy.apply("t", 2, in_worker_process=False)
        policy.apply("t", 3, in_worker_process=False)

    def test_kill_rule_raises_worker_killed_serially(self):
        policy = ChaosPolicy(kill=[("t", 1)])
        with pytest.raises(WorkerKilled):
            policy.apply("t", 1, in_worker_process=False)

    def test_delay_rule_sleeps(self):
        import time

        policy = ChaosPolicy(delay={("t", 1): 0.05})
        start = time.monotonic()
        policy.apply("t", 1, in_worker_process=False)
        assert time.monotonic() - start >= 0.04


class TestKeyboardInterrupt:
    def test_journal_survives_interrupt(self, tmp_path):
        path = str(tmp_path / "j.ndjson")

        calls = {"n": 0}

        def interrupting(x):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt()
            return x * x

        executor = ResilientExecutor(interrupting)
        with pytest.raises(KeyboardInterrupt):
            executor.run(
                _tasks(5), run_id="r", fingerprint="f", journal=path
            )
        # The two completed tasks are checkpointed and resumable.
        resumed = ResilientExecutor(_square).run(
            _tasks(5), run_id="r", fingerprint="f", journal=path
        )
        assert resumed.resumed == 2
        assert resumed.executed == 3
        assert resumed.result_list() == [0, 1, 4, 9, 16]
        assert os.path.exists(path)
