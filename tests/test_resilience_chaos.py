"""Chaos suite: campaigns under injected harness faults.

The ISSUE.md acceptance criterion, verbatim: a campaign with injected
worker kills, task exceptions and deadline overruns must complete (or
resume from its journal) with a ``CampaignResult`` bit-identical to an
unperturbed run at the same seed, with retry / requeue / checkpoint
counts visible in ``repro.obs`` metrics.  Every test here perturbs a
real campaign (:func:`run_campaign` over the live SECDED platform, or
:meth:`BatchCampaign.retention_failure_curve`) through a
:class:`ChaosPolicy` and compares against the unperturbed truth.
"""

import numpy as np
import pytest

from repro import obs
from repro.analysis.batch import BatchCampaign
from repro.analysis.campaign import run_campaign
from repro.core.access import (
    ACCESS_CELL_BASED_40NM_TYPICAL,
    ACCESS_COMMERCIAL_40NM,
)
from repro.core.retention import RETENTION_COMMERCIAL_40NM
from repro.mitigation import SecdedRunner
from repro.resilience import ChaosPolicy, ResilientExecutor, TaskSpec
from repro.workloads.fft import build_fft_program


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.disable_metrics()
    obs.disable_tracing()
    yield
    obs.disable_metrics()
    obs.disable_tracing()


@pytest.fixture(scope="module")
def fft_fixture():
    program = build_fft_program(64)
    golden = program.expected_output(list(program.data_words[:64]))
    return program, golden


def _campaign_kwargs(program, golden):
    return dict(
        workload=program.workload,
        golden=golden,
        access_model=ACCESS_CELL_BASED_40NM_TYPICAL,
        vdd=0.40,
        runs=4,
        seed_base=100,
        macro_style="cell-based",
    )


def _assert_identical(perturbed, baseline):
    """CampaignResult equality (the resilience report is compare=False)."""
    assert perturbed == baseline
    assert perturbed.failures_by_kind == baseline.failures_by_kind


class TestCampaignChaos:
    def test_worker_kill_and_task_exception_recover(self, fft_fixture):
        """Killed worker + raising task: retried, then bit-identical."""
        program, golden = fft_fixture
        kwargs = _campaign_kwargs(program, golden)
        baseline = run_campaign(SecdedRunner, **kwargs)
        chaos = ChaosPolicy(
            kill=[("run-101", 1)],
            raise_in_task=[("run-102", 1)],
        )
        perturbed = run_campaign(
            SecdedRunner, processes=2, chaos=chaos, **kwargs
        )
        _assert_identical(perturbed, baseline)
        report = perturbed.resilience
        assert report.retries >= 2  # the killed and the raising run
        assert report.pool_breaks >= 1
        assert report.quarantined == {}

    def test_deadline_overrun_recovers(self, fft_fixture):
        """A delayed task blows its deadline, retries, and the result
        is still bit-identical (the overrun attempt is discarded)."""
        program, golden = fft_fixture
        kwargs = _campaign_kwargs(program, golden)
        baseline = run_campaign(SecdedRunner, **kwargs)
        chaos = ChaosPolicy(delay={("run-100", 1): 1.0})
        perturbed = run_campaign(
            SecdedRunner, task_timeout=0.75, chaos=chaos, **kwargs
        )
        _assert_identical(perturbed, baseline)
        assert perturbed.resilience.deadline_overruns >= 1
        assert perturbed.resilience.retries >= 1

    def test_retry_counts_visible_in_obs_metrics(self, fft_fixture):
        program, golden = fft_fixture
        registry = obs.enable_metrics()
        chaos = ChaosPolicy(raise_in_task=[("run-101", 1)])
        run_campaign(
            SecdedRunner, chaos=chaos,
            **_campaign_kwargs(program, golden),
        )
        counters = registry.snapshot().counters
        assert counters["resilience.tasks"] == 4
        assert counters["resilience.tasks_completed"] == 4
        assert counters["resilience.retries"] == 1
        assert counters["resilience.task_failures"] == 1
        assert counters["campaign.runs"] == 4

    def test_journal_resume_is_bit_identical(self, fft_fixture, tmp_path):
        """Half the campaign checkpointed, then resumed to the exact
        same CampaignResult — with the resumed half never re-executed."""
        program, golden = fft_fixture
        kwargs = _campaign_kwargs(program, golden)
        baseline = run_campaign(SecdedRunner, **kwargs)
        journal = str(tmp_path / "campaign.ndjson")
        registry = obs.enable_metrics()
        half = dict(kwargs, runs=2)
        run_campaign(SecdedRunner, journal=journal, **half)
        assert registry.snapshot().counters["resilience.checkpoints"] == 2
        resumed = run_campaign(SecdedRunner, journal=journal, **kwargs)
        _assert_identical(resumed, baseline)
        assert resumed.resilience.resumed == 2
        assert resumed.resilience.executed == 2
        counters = registry.snapshot().counters
        assert counters["resilience.resumed_tasks"] == 2
        assert counters["resilience.checkpoints"] == 4

    def test_heartbeat_survives_kill_and_resume(self, fft_fixture, tmp_path):
        """The NDJSON heartbeat stays readable across a worker kill and
        a journal resume: each campaign invocation emits a ``start``
        record (with the resumed head start pre-counted) and per-task
        records that drive the ETA, and a torn final line — the
        abnormal-exit case — never hides the complete records."""
        from repro.obs.report import read_ndjson

        program, golden = fft_fixture
        kwargs = _campaign_kwargs(program, golden)
        baseline = run_campaign(SecdedRunner, **kwargs)
        journal = str(tmp_path / "campaign.ndjson")
        first_beat = tmp_path / "hb_first.ndjson"
        resume_beat = tmp_path / "hb_resume.ndjson"

        half = dict(kwargs, runs=2)
        run_campaign(
            SecdedRunner, journal=journal, heartbeat=str(first_beat),
            **half,
        )
        first = read_ndjson(first_beat)
        assert first[0]["kind"] == "start"
        assert first[0]["total"] == 2
        assert first[0]["done"] == 0
        assert first[-1]["done"] == 2

        # Resume under chaos: a killed worker must not corrupt either
        # the journal or the heartbeat stream.
        chaos = ChaosPolicy(kill=[("run-102", 1)])
        resumed = run_campaign(
            SecdedRunner, journal=journal, heartbeat=str(resume_beat),
            processes=2, chaos=chaos, **kwargs,
        )
        _assert_identical(resumed, baseline)
        assert resumed.resilience.resumed == 2

        records = read_ndjson(resume_beat)
        assert records[0]["kind"] == "start"
        assert records[0]["total"] == 4
        assert records[0]["done"] == 2  # resumed head start pre-counted
        assert records[0]["resumed"] == 2
        tasks = [r for r in records if r["kind"] == "task"]
        assert [r["done"] for r in tasks] == [3, 4]
        assert all(r["eta_s"] >= 0.0 for r in tasks)
        assert records[-1]["done"] == 4

        # Torn tail (SIGKILL mid-write): complete records still read.
        with open(resume_beat, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "task", "done"')
        assert read_ndjson(resume_beat) == records

    def test_poison_run_quarantined_not_fatal(self, fft_fixture):
        """A run that fails every attempt is excluded and counted, and
        the campaign still completes with the surviving runs."""
        program, golden = fft_fixture
        kwargs = _campaign_kwargs(program, golden)
        chaos = ChaosPolicy(
            raise_in_task=[("run-101", 1), ("run-101", 2)],
        )
        result = run_campaign(
            SecdedRunner, max_retries=1, chaos=chaos, **kwargs
        )
        assert result.quarantined == 1
        assert result.runs == 3
        assert result.resilience.quarantined == {"run-101": "ChaosError"}


def _echo(x):
    return x


class TestSerialDegradation:
    def test_repeatedly_broken_pool_degrades_to_serial(self):
        """Three pool breaks exceed max_pool_breaks=2: the executor
        abandons the pool, finishes serially and still completes."""
        chaos = ChaosPolicy(kill=[("k0", 1), ("k0", 2), ("k0", 3)])
        registry = obs.enable_metrics()
        executor = ResilientExecutor(
            _echo, processes=2, max_retries=3,
            backoff_base_s=0.0, max_pool_breaks=2, chaos=chaos,
        )
        tasks = [TaskSpec(key=f"k{i}", args=(i,)) for i in range(4)]
        report = executor.run(tasks, run_id="degrade", fingerprint="f")
        assert report.complete
        assert report.result_list() == [0, 1, 2, 3]
        assert report.pool_breaks == 3
        assert report.degraded_to_serial
        counters = registry.snapshot().counters
        assert counters["resilience.pool_breaks"] == 3
        assert counters["resilience.serial_degradations"] == 1
        # Serial chaos-kill attempt 3 degrades to an exception, so the
        # poison task needed its 4th attempt; bystanders were requeued
        # at their original attempt number and never quarantined.
        assert report.quarantined == {}


class TestBatchChaos:
    VOLTS = np.linspace(0.4, 1.0, 9)

    def _curve(self, **overrides):
        params = dict(n_dies=4, words=64, bits=32)
        params.update(overrides)
        campaign = BatchCampaign(
            seed=2014, processes=params.pop("processes", None)
        )
        return campaign.retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            **params,
        )

    def test_killed_die_worker_recovers_bit_identical(self):
        baseline = self._curve()
        perturbed = self._curve(
            processes=2, chaos=ChaosPolicy(kill=[("die-1", 1)])
        )
        np.testing.assert_array_equal(perturbed, baseline)

    def test_journal_resume_matches_fresh_run(self, tmp_path):
        journal = str(tmp_path / "dies.ndjson")
        baseline = self._curve()
        first = self._curve(journal=journal)
        np.testing.assert_array_equal(first, baseline)
        resumed = self._curve(journal=journal)
        np.testing.assert_array_equal(resumed, baseline)

    def test_quarantined_die_raises_instead_of_skewing(self):
        chaos = ChaosPolicy(raise_in_task=[("die-0", 1)])
        with pytest.raises(RuntimeError, match="die-0"):
            self._curve(max_retries=0, chaos=chaos)
