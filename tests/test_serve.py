"""Campaign job server: endpoints, dedup, chaos kill + warm resume.

Uses :class:`repro.serve.ServerThread` to stand the asyncio server up
in-process and plain ``urllib`` as the client — the same surface the
``repro serve`` CLI exposes.  The chaos test is the serving pipeline's
core resilience claim: killing a worker mid-campaign loses no stored
points, and a resubmission serves the completed prefix warm while
executing only the remainder, bit-identically to a fresh cold run.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.mitigation import SecdedRunner
from repro.serve import ServerThread, normalize_spec, spec_fingerprint
from repro.store import (
    ResultStore,
    encode_campaign_result,
    scheme_failure_grid,
)
from repro.workloads.fft import build_fft_program

SPEC = {"scheme": "secded", "vdds": [0.44, 0.46], "runs": 2, "seed": 100}
DEADLINE_S = 120.0


def _request(url, payload=None):
    """GET (or POST ``payload`` as JSON); returns (status, body dict)."""
    data = None
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait(base_url, job_id, states=("done",)):
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        status, body = _request(f"{base_url}/status/{job_id}")
        assert status == 200
        if body["state"] in states or body["state"] == "failed":
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {DEADLINE_S}s")


def _reference_results(tmp_path, spec=SPEC):
    """Cold-run the spec against a fresh store, no server involved."""
    spec = normalize_spec(dict(spec))
    program = build_fft_program(spec["fft"])
    golden = program.expected_output(
        list(program.data_words[: spec["fft"]])
    )
    grid = scheme_failure_grid(
        SecdedRunner, program.workload, golden,
        ACCESS_CELL_BASED_40NM_TYPICAL, spec["vdds"],
        store=ResultStore(tmp_path / "reference.sqlite"),
        frequency=spec["frequency"], runs=spec["runs"],
        seed_base=spec["seed"], lanes=spec["lanes"],
        macro_style=spec["macro_style"],
    )
    return [encode_campaign_result(result) for result in grid.results]


class TestSpec:
    def test_normalize_defaults_and_vdd_promotion(self):
        spec = normalize_spec({"scheme": "secded", "vdd": 0.5})
        assert spec["vdds"] == [0.5]
        assert spec["runs"] == 20
        assert spec["seed"] == 100
        assert spec["lanes"] == 1
        assert spec["fft"] == 64

    def test_fingerprint_ignores_execution_knobs(self):
        spec_a = normalize_spec({**SPEC, "processes": None})
        spec_b = normalize_spec({**SPEC, "processes": 4})
        assert spec_fingerprint(spec_a) == spec_fingerprint(spec_b)
        spec_c = normalize_spec({**SPEC, "runs": 3})
        assert spec_fingerprint(spec_c) != spec_fingerprint(spec_a)

    def test_normalize_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            normalize_spec({"scheme": "parity", "vdd": 0.5})


class TestEndpoints:
    def test_submit_status_result_and_warm_curve(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, health = _request(handle.url + "/healthz")
            assert (status, health["ok"]) == (200, True)

            status, submitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            assert submitted["deduplicated"] is False
            job_id = submitted["job"]

            done = _wait(handle.url, job_id)
            assert done["state"] == "done"
            assert done["error"] is None
            assert done["points_done"] == len(SPEC["vdds"])
            assert done["hits"] == 0
            assert done["executed_points"] == len(SPEC["vdds"])
            assert done["tasks_done"] == done["tasks_total"] > 0

            status, result = _request(f"{handle.url}/result/{job_id}")
            assert status == 200
            results = result["results"]
            assert len(results) == len(SPEC["vdds"])

            # The whole curve is now cached: /curve answers warm, with
            # byte-identical payloads, without starting a job.
            status, curve = _request(
                handle.url
                + "/curve?scheme=secded&vdds=0.44,0.46&runs=2&seed=100"
            )
            assert status == 200
            assert curve["warm"] is True
            assert curve["results"] == results

            status, stats = _request(handle.url + "/stats")
            assert status == 200
            assert stats["jobs"]["done"] == 1
        assert results == _reference_results(tmp_path)

    def test_cold_curve_submits_a_job(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _request(
                handle.url
                + "/curve?scheme=secded&vdd=0.44&runs=2&seed=100"
            )
            assert status == 202
            assert body["warm"] is False
            done = _wait(handle.url, body["job"])
            assert done["state"] == "done"

    def test_unknown_routes_and_methods(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            assert _request(handle.url + "/nope")[0] == 404
            assert _request(f"{handle.url}/status/none")[0] == 404
            assert _request(handle.url + "/curve", payload={})[0] == 405
            assert _request(
                handle.url + "/submit", payload={"scheme": "bogus"}
            )[0] == 400


class TestDedup:
    def test_concurrent_identical_submits_share_one_job(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            responses = []
            barrier = threading.Barrier(3)

            def submit():
                barrier.wait()
                responses.append(
                    _request(handle.url + "/submit", payload=SPEC)
                )

            threads = [
                threading.Thread(target=submit) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert [status for status, _ in responses] == [202, 202, 202]
            job_ids = {body["job"] for _, body in responses}
            assert len(job_ids) == 1  # one execution for three clients
            deduplicated = [
                body["deduplicated"] for _, body in responses
            ]
            assert sorted(deduplicated) == [False, True, True]

            done = _wait(handle.url, job_ids.pop())
            assert done["state"] == "done"
            _, stats = _request(handle.url + "/stats")
            assert stats["jobs"] == {"done": 1}


class TestChaos:
    def test_killed_worker_resumes_warm_and_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")

        # Phase 1: the worker dies after completing (and storing) the
        # first point.
        with ServerThread(store, fail_after_points=1) as handle:
            status, submitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            failed = _wait(handle.url, submitted["job"])
            assert failed["state"] == "failed"
            assert "chaos" in failed["error"]
            status, _ = _request(
                f"{handle.url}/result/{submitted['job']}"
            )
            assert status == 500
        assert len(store) == 1  # the completed point survived the kill

        # Phase 2: a healthy server on the same store accepts the
        # resubmission (failed jobs do not pin the fingerprint), serves
        # the stored point warm and executes only the remainder.
        with ServerThread(store) as handle:
            status, resubmitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            assert resubmitted["deduplicated"] is False
            done = _wait(handle.url, resubmitted["job"])
            assert done["state"] == "done"
            assert done["hits"] == 1
            assert done["executed_points"] == len(SPEC["vdds"]) - 1
            status, result = _request(
                f"{handle.url}/result/{resubmitted['job']}"
            )
            assert status == 200

        # Bit-identity with a cold run on a fresh store.
        assert result["results"] == _reference_results(tmp_path)
