"""Campaign job server: endpoints, dedup, chaos kill + warm resume.

Uses :class:`repro.serve.ServerThread` to stand the asyncio server up
in-process and plain ``urllib`` as the client — the same surface the
``repro serve`` CLI exposes.  The chaos test is the serving pipeline's
core resilience claim: killing a worker mid-campaign loses no stored
points, and a resubmission serves the completed prefix warm while
executing only the remainder, bit-identically to a fresh cold run.

PR 9 additions: malformed-HTTP hardening (400/413), admission control
(429 + Retry-After), watchdog deadlines (timed-out + fingerprint
eviction), graceful drain on exit, and configurable ServerThread
startup/shutdown budgets.
"""

import asyncio
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.mitigation import SecdedRunner
from repro.serve import ServerThread, normalize_spec, spec_fingerprint
from repro.serve.server import CampaignJobServer
from repro.store import (
    ResultStore,
    encode_campaign_result,
    scheme_failure_grid,
)
from repro.workloads.fft import build_fft_program

SPEC = {"scheme": "secded", "vdds": [0.44, 0.46], "runs": 2, "seed": 100}
DEADLINE_S = 120.0


def _request(url, payload=None):
    """GET (or POST ``payload`` as JSON); returns (status, body dict)."""
    status, body, _ = _request_full(url, payload)
    return status, body


def _request_full(url, payload=None):
    """Like :func:`_request` but also returns the response headers."""
    data = None
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def _raw_request(handle, data):
    """Send raw bytes on a fresh socket; returns (status, body dict).

    Bypasses urllib so the tests can send requests urllib refuses to
    produce (garbage request lines, bogus Content-Length headers).
    """
    address = (handle.server.host, handle.server.port)
    with socket.create_connection(address, timeout=10) as sock:
        sock.sendall(data)
        sock.shutdown(socket.SHUT_WR)
        response = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            response += chunk
    head, _, body = response.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split()[1])
    return status, json.loads(body)


def _wait(base_url, job_id, states=("done",)):
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        status, body = _request(f"{base_url}/status/{job_id}")
        assert status == 200
        if body["state"] in states or body["state"] == "failed":
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {DEADLINE_S}s")


def _reference_results(tmp_path, spec=SPEC):
    """Cold-run the spec against a fresh store, no server involved."""
    spec = normalize_spec(dict(spec))
    program = build_fft_program(spec["fft"])
    golden = program.expected_output(
        list(program.data_words[: spec["fft"]])
    )
    grid = scheme_failure_grid(
        SecdedRunner, program.workload, golden,
        ACCESS_CELL_BASED_40NM_TYPICAL, spec["vdds"],
        store=ResultStore(tmp_path / "reference.sqlite"),
        frequency=spec["frequency"], runs=spec["runs"],
        seed_base=spec["seed"], lanes=spec["lanes"],
        macro_style=spec["macro_style"],
    )
    return [encode_campaign_result(result) for result in grid.results]


class TestSpec:
    def test_normalize_defaults_and_vdd_promotion(self):
        spec = normalize_spec({"scheme": "secded", "vdd": 0.5})
        assert spec["vdds"] == [0.5]
        assert spec["runs"] == 20
        assert spec["seed"] == 100
        assert spec["lanes"] == 1
        assert spec["fft"] == 64

    def test_fingerprint_ignores_execution_knobs(self):
        spec_a = normalize_spec({**SPEC, "processes": None})
        spec_b = normalize_spec({**SPEC, "processes": 4})
        assert spec_fingerprint(spec_a) == spec_fingerprint(spec_b)
        spec_c = normalize_spec({**SPEC, "runs": 3})
        assert spec_fingerprint(spec_c) != spec_fingerprint(spec_a)

    def test_normalize_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            normalize_spec({"scheme": "parity", "vdd": 0.5})


class TestEndpoints:
    def test_submit_status_result_and_warm_curve(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, health = _request(handle.url + "/healthz")
            assert (status, health["ok"]) == (200, True)

            status, submitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            assert submitted["deduplicated"] is False
            job_id = submitted["job"]

            done = _wait(handle.url, job_id)
            assert done["state"] == "done"
            assert done["error"] is None
            assert done["points_done"] == len(SPEC["vdds"])
            assert done["hits"] == 0
            assert done["executed_points"] == len(SPEC["vdds"])
            assert done["tasks_done"] == done["tasks_total"] > 0

            status, result = _request(f"{handle.url}/result/{job_id}")
            assert status == 200
            results = result["results"]
            assert len(results) == len(SPEC["vdds"])

            # The whole curve is now cached: /curve answers warm, with
            # byte-identical payloads, without starting a job.
            status, curve = _request(
                handle.url
                + "/curve?scheme=secded&vdds=0.44,0.46&runs=2&seed=100"
            )
            assert status == 200
            assert curve["warm"] is True
            assert curve["results"] == results

            status, stats = _request(handle.url + "/stats")
            assert status == 200
            assert stats["jobs"]["done"] == 1
        assert results == _reference_results(tmp_path)

    def test_cold_curve_submits_a_job(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _request(
                handle.url
                + "/curve?scheme=secded&vdd=0.44&runs=2&seed=100"
            )
            assert status == 202
            assert body["warm"] is False
            done = _wait(handle.url, body["job"])
            assert done["state"] == "done"

    def test_unknown_routes_and_methods(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            assert _request(handle.url + "/nope")[0] == 404
            assert _request(f"{handle.url}/status/none")[0] == 404
            assert _request(handle.url + "/curve", payload={})[0] == 405
            assert _request(
                handle.url + "/submit", payload={"scheme": "bogus"}
            )[0] == 400


class TestDedup:
    def test_concurrent_identical_submits_share_one_job(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            responses = []
            barrier = threading.Barrier(3)

            def submit():
                barrier.wait()
                responses.append(
                    _request(handle.url + "/submit", payload=SPEC)
                )

            threads = [
                threading.Thread(target=submit) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert [status for status, _ in responses] == [202, 202, 202]
            job_ids = {body["job"] for _, body in responses}
            assert len(job_ids) == 1  # one execution for three clients
            deduplicated = [
                body["deduplicated"] for _, body in responses
            ]
            assert sorted(deduplicated) == [False, True, True]

            done = _wait(handle.url, job_ids.pop())
            assert done["state"] == "done"
            _, stats = _request(handle.url + "/stats")
            assert stats["jobs"] == {"done": 1}


class TestChaos:
    def test_killed_worker_resumes_warm_and_bit_identical(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")

        # Phase 1: the worker dies after completing (and storing) the
        # first point.
        with ServerThread(store, fail_after_points=1) as handle:
            status, submitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            failed = _wait(handle.url, submitted["job"])
            assert failed["state"] == "failed"
            assert "chaos" in failed["error"]
            status, _ = _request(
                f"{handle.url}/result/{submitted['job']}"
            )
            assert status == 500
        assert len(store) == 1  # the completed point survived the kill

        # Phase 2: a healthy server on the same store accepts the
        # resubmission (failed jobs do not pin the fingerprint), serves
        # the stored point warm and executes only the remainder.
        with ServerThread(store) as handle:
            status, resubmitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert status == 202
            assert resubmitted["deduplicated"] is False
            done = _wait(handle.url, resubmitted["job"])
            assert done["state"] == "done"
            assert done["hits"] == 1
            assert done["executed_points"] == len(SPEC["vdds"]) - 1
            status, result = _request(
                f"{handle.url}/result/{resubmitted['job']}"
            )
            assert status == 200

        # Bit-identity with a cold run on a fresh store.
        assert result["results"] == _reference_results(tmp_path)


class TestHardening:
    """Malformed-HTTP requests get specific 4xx answers, never a hang."""

    def test_garbage_request_line_is_400(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _raw_request(handle, b"\x01garbage\r\n")
            assert status == 400
            assert "malformed request line" in body["error"]
            status, body = _raw_request(
                handle, b"GET /healthz NOTHTTP\r\n\r\n"
            )
            assert status == 400
            # The connection-level rejection must not wedge the server.
            assert _request(handle.url + "/healthz")[0] == 200

    def test_post_without_content_length_is_413(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _raw_request(
                handle, b"POST /submit HTTP/1.1\r\n\r\n"
            )
            assert status == 413
            assert "Content-Length" in body["error"]

    def test_invalid_content_length_is_400(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            for raw in (b"abc", b"-5"):
                status, body = _raw_request(
                    handle,
                    b"POST /submit HTTP/1.1\r\n"
                    b"Content-Length: " + raw + b"\r\n\r\n",
                )
                assert status == 400
                assert "Content-Length" in body["error"]

    def test_oversized_body_is_413_before_reading_it(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store, max_body_bytes=64) as handle:
            status, body = _raw_request(
                handle,
                b"POST /submit HTTP/1.1\r\n"
                b"Content-Length: 100\r\n\r\n",
            )
            assert status == 413
            assert "64-byte cap" in body["error"]

    def test_truncated_body_is_400(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _raw_request(
                handle,
                b"POST /submit HTTP/1.1\r\n"
                b"Content-Length: 50\r\n\r\n"
                b"short",
            )
            assert status == 400
            assert "truncated" in body["error"]

    def test_invalid_json_body_is_400(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, body = _raw_request(
                handle,
                b"POST /submit HTTP/1.1\r\n"
                b"Content-Length: 3\r\n\r\n"
                b"xyz",
            )
            assert status == 400
            assert "invalid JSON" in body["error"]


class TestAdmission:
    def test_overflow_is_shed_with_retry_after(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        hold = threading.Event()
        other = {**SPEC, "seed": 101}
        with ServerThread(
            store,
            workers=1,
            max_inflight_jobs=1,
            chaos_hold=hold,
            retry_after_s=2.5,
        ) as handle:
            status, first = _request(handle.url + "/submit", payload=SPEC)
            assert status == 202

            # Capacity reached: a *different* spec is shed with the
            # standard backpressure contract (429 + Retry-After).
            status, body, headers = _request_full(
                handle.url + "/submit", payload=other
            )
            assert status == 429
            assert headers["Retry-After"] == "2.5"
            assert body["retry_after_s"] == 2.5
            assert body["queued"] + body["running"] == 1

            # An *identical* spec still joins the live job — dedup
            # outranks admission control, as a retrying client relies on.
            status, joined = _request(handle.url + "/submit", payload=SPEC)
            assert (status, joined["deduplicated"]) == (202, True)
            assert joined["job"] == first["job"]

            _, stats = _request(handle.url + "/stats")
            assert stats["admission"]["max_inflight_jobs"] == 1

            hold.set()
            assert _wait(handle.url, first["job"])["state"] == "done"

            # Capacity freed: the previously shed spec is now accepted.
            status, retried = _request(handle.url + "/submit", payload=other)
            assert (status, retried["deduplicated"]) == (202, False)
            assert _wait(handle.url, retried["job"])["state"] == "done"


class TestWatchdog:
    def test_deadline_times_out_job_and_evicts_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        hold = threading.Event()  # never-released: the job is stuck
        with ServerThread(
            store, job_deadline_s=0.1, chaos_hold=hold
        ) as handle:
            status, submitted = _request(handle.url + "/submit", payload=SPEC)
            assert status == 202
            stuck = _wait(handle.url, submitted["job"], states=("timed-out",))
            assert stuck["state"] == "timed-out"
            assert "deadline" in stuck["error"]

            status, _ = _request(f"{handle.url}/result/{submitted['job']}")
            assert status == 500

            _, stats = _request(handle.url + "/stats")
            assert stats["jobs"]["timed-out"] == 1
            assert stats["watchdog"]["job_deadline_s"] == 0.1

            # The fingerprint was evicted, so a resubmission gets a
            # fresh job instead of joining the corpse.  Widen the
            # deadline first so the watchdog spares the fresh job.
            handle.server.job_deadline_s = 60.0
            status, resubmitted = _request(
                handle.url + "/submit", payload=SPEC
            )
            assert (status, resubmitted["deduplicated"]) == (202, False)
            assert resubmitted["job"] != submitted["job"]

            hold.set()  # release the fresh job; it completes normally
            assert _wait(handle.url, resubmitted["job"])["state"] == "done"


class TestDrain:
    def test_exit_drains_in_flight_jobs_and_quiesces_pool(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with ServerThread(store) as handle:
            status, submitted = _request(handle.url + "/submit", payload=SPEC)
            assert status == 202
            server = handle.server
        # Exiting the context drained: the in-flight job ran to
        # completion (stop() no longer abandons workers) ...
        job = server._jobs[submitted["job"]]
        assert job.state == "done"
        assert job.results is not None
        assert server._last_drain_clean is True
        assert server._drains == 1
        # ... and the worker pool + event loop + watchdog are quiesced.
        lingering = [
            thread.name
            for thread in threading.enumerate()
            if thread.name.startswith("repro-serve") and thread.is_alive()
        ]
        assert lingering == []


class TestServerThreadTimeouts:
    def test_startup_timeout_is_configurable_and_descriptive(
        self, tmp_path, monkeypatch
    ):
        async def hang(self):
            await asyncio.sleep(60)

        monkeypatch.setattr(CampaignJobServer, "start", hang)
        store = ResultStore(tmp_path / "s.sqlite")
        with pytest.raises(RuntimeError, match="did not start within 0.2s"):
            ServerThread(store, startup_timeout_s=0.2).__enter__()
