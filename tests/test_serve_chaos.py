"""Process-level chaos: SIGKILL a live ``repro serve``, restart, resume.

The acceptance exercise for the durability tentpole, run against real
processes (``python -m repro serve``) rather than in-process server
threads:

1. start a journaled server, submit a multi-point grid through
   :class:`~repro.serve.client.ServeClient`;
2. ``SIGKILL`` the server after at least one point has reached the
   store (mid-job, no drain, no flush);
3. restart the server on the same store + journal and assert it
   replays the journal, re-claims the job under the *same job id*,
   resumes warm (the pre-kill points are store hits), and completes
   with results byte-identical to an uninterrupted cold run;
4. ``SIGTERM`` drains cleanly (exit 0, ``clean=True``).

Slower than the in-process suites (two server processes plus a
reference grid) but the only place the kill crosses a real process
boundary.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.mitigation import SecdedRunner
from repro.serve import JobFailedError, ServeClient, normalize_spec
from repro.store import (
    ResultStore,
    encode_campaign_result,
    scheme_failure_grid,
)
from repro.workloads.fft import build_fft_program

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: Four points at runs=10 (~2s of work): long enough that the kill in
#: the middle reliably lands while points are still outstanding.
SPEC = {
    "scheme": "secded",
    "vdds": [0.42, 0.44, 0.46, 0.48],
    "runs": 10,
    "seed": 100,
}
DEADLINE_S = 120.0


def _server_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _spawn_server(store_path, journal_path):
    """Start ``repro serve`` on an ephemeral port; returns (proc, url, line)."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(store_path),
            "--journal", str(journal_path),
            "--port", "0",
            "--workers", "1",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_server_env(),
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on (http://[\d.]+:\d+)", line)
    if not match:
        proc.kill()
        proc.wait()
        raise AssertionError(f"server did not announce itself: {line!r}")
    return proc, match.group(1), line


def _await_first_stored_point(store_path, deadline_s=DEADLINE_S):
    """Block until the store sidecar holds >= 1 complete record."""
    sidecar = Path(str(store_path) + ".ndjson")
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if sidecar.exists() and sidecar.read_bytes().count(b"\n") >= 1:
            return
        time.sleep(0.02)
    raise AssertionError(f"no point reached {sidecar} in {deadline_s}s")


def _reference_results(tmp_path):
    """The same grid, cold, straight into a fresh store — no server."""
    spec = normalize_spec(dict(SPEC))
    program = build_fft_program(spec["fft"])
    golden = program.expected_output(list(program.data_words[: spec["fft"]]))
    grid = scheme_failure_grid(
        SecdedRunner, program.workload, golden,
        ACCESS_CELL_BASED_40NM_TYPICAL, spec["vdds"],
        store=ResultStore(tmp_path / "reference.sqlite"),
        frequency=spec["frequency"], runs=spec["runs"],
        seed_base=spec["seed"], lanes=spec["lanes"],
        macro_style=spec["macro_style"],
    )
    return [encode_campaign_result(result) for result in grid.results]


class TestServeChaos:
    def test_sigkill_midjob_then_restart_completes_bit_identical(
        self, tmp_path
    ):
        store_path = tmp_path / "chaos.sqlite"
        journal_path = tmp_path / "jobs.ndjson"

        # Phase 1: submit, let >= 1 point land, then kill -9.
        proc, url, _ = _spawn_server(store_path, journal_path)
        try:
            submitted = ServeClient(url).submit(SPEC)
            assert submitted["deduplicated"] is False
            job_id = submitted["job"]
            _await_first_stored_point(store_path)
        finally:
            proc.kill()  # SIGKILL: no drain, no journal close, no flush
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # Phase 2: a restarted server replays the journal and resumes
        # the job — same id, warm from the store.
        proc, url, banner = _spawn_server(store_path, journal_path)
        try:
            assert "1 jobs recovered" in banner
            client = ServeClient(url)
            try:
                result = client.wait(
                    job_id, poll_s=0.1, deadline_s=DEADLINE_S
                )
            except JobFailedError as error:  # pragma: no cover - diagnostics
                raise AssertionError(
                    f"recovered job settled badly: {error.status}"
                ) from error
            assert result["state"] == "done"
            assert result["recovered"] is True
            # Warm resume: the pre-kill point(s) came from the store.
            assert result["hits"] >= 1
            assert result["hits"] + result["executed_points"] == len(
                SPEC["vdds"]
            )

            stats = client.stats()
            assert stats["recovered_jobs"] == 1
            assert stats["store"]["hits"] >= 1

            # Resubmitting after recovery joins the completed job.
            joined = client.submit(SPEC)
            assert joined["deduplicated"] is True
            assert joined["job"] == job_id

            # /curve is now all-warm.
            status, curve = client.curve(**SPEC)
            assert (status, curve["warm"]) == (200, True)
        finally:
            proc.terminate()
            output, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "drained (clean=True" in output

        # The recovered run is byte-identical to an uninterrupted one.
        reference = _reference_results(tmp_path)
        assert json.dumps(result["results"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert json.dumps(curve["results"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_sigterm_drains_cleanly(self, tmp_path):
        proc, url, _ = _spawn_server(
            tmp_path / "s.sqlite", tmp_path / "jobs.ndjson"
        )
        try:
            assert ServeClient(url).healthz()["ok"] is True
        finally:
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "drained (clean=True, abandoned=0)" in output
