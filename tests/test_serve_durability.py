"""Durability surface of ``repro serve``: journal, claims, client.

Covers the crash-safety building blocks in isolation (NDJSON job
journal replay, torn-tail tolerance, cross-process fingerprint
claims) and their integration (a restarted server resumes incomplete
jobs warm from the store; two servers replaying the same journal
never double-run a job), plus the deterministic retry behavior of
:class:`~repro.serve.client.ServeClient` against a scripted
transport.  The full subprocess ``kill -9`` exercise lives in
``tests/test_serve_chaos.py``.
"""

import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.mitigation import SecdedRunner
from repro.obs.report import read_ndjson
from repro.serve import (
    JobFailedError,
    ServeClient,
    ServeClientError,
    ServerThread,
    ServerUnavailableError,
    normalize_spec,
    spec_fingerprint,
)
from repro.serve.durability import (
    JobClaims,
    JobJournal,
    JobJournalError,
    replay_jobs,
)
from repro.store import (
    ResultStore,
    encode_campaign_result,
    scheme_failure_grid,
)
from repro.workloads.fft import build_fft_program

SPEC = {"scheme": "secded", "vdds": [0.44, 0.46], "runs": 2, "seed": 100}
DEADLINE_S = 120.0


def _request(url, payload=None):
    data = None
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=data)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _wait(base_url, job_id, states=("done",)):
    deadline = time.monotonic() + DEADLINE_S
    while time.monotonic() < deadline:
        status, body = _request(f"{base_url}/status/{job_id}")
        assert status == 200
        if body["state"] in states or body["state"] == "failed":
            return body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not settle in {DEADLINE_S}s")


def _grid_into(store, spec=SPEC):
    """Run the spec's grid directly into ``store`` (no server)."""
    spec = normalize_spec(dict(spec))
    program = build_fft_program(spec["fft"])
    golden = program.expected_output(list(program.data_words[: spec["fft"]]))
    grid = scheme_failure_grid(
        SecdedRunner, program.workload, golden,
        ACCESS_CELL_BASED_40NM_TYPICAL, spec["vdds"],
        store=store,
        frequency=spec["frequency"], runs=spec["runs"],
        seed_base=spec["seed"], lanes=spec["lanes"],
        macro_style=spec["macro_style"],
    )
    return [encode_campaign_result(result) for result in grid.results]


def _write_incomplete_job(journal_path, spec=SPEC, job_id="job-0007-recoverme"):
    """Journal a submitted+started job with no terminal record.

    This is exactly what a SIGKILLed server leaves behind.
    """
    normalized = normalize_spec(dict(spec))
    fingerprint = spec_fingerprint(normalized)
    with JobJournal(journal_path) as journal:
        journal.record_submitted(
            job_id, fingerprint, normalized, len(normalized["vdds"])
        )
        journal.record_started(job_id)
    return job_id, fingerprint


class TestJobJournal:
    def test_replay_roundtrips_every_transition(self, tmp_path):
        path = tmp_path / "jobs.ndjson"
        with JobJournal(path) as journal:
            journal.record_submitted("job-1", "fp-1", {"scheme": "secded"}, 2)
            journal.record_started("job-1")
            journal.record_point("job-1", 1, 2)
            journal.record_done("job-1", hits=1, executed_points=1)
            journal.record_submitted("job-2", "fp-2", {"scheme": "none"}, 1)
            journal.record_started("job-2")
            journal.record_failed("job-2", "boom")
            journal.record_submitted("job-3", "fp-3", {"scheme": "ocean"}, 3)
            journal.record_started("job-3")
            journal.record_point("job-3", 2, 3)
            journal.record_submitted("job-4", "fp-4", {"scheme": "secded"}, 1)
            journal.record_started("job-4")
            journal.record_timed_out("job-4", 5.0)
            journal.record_drain(1, False)

        jobs = replay_jobs(path)
        assert set(jobs) == {"job-1", "job-2", "job-3", "job-4"}
        assert jobs["job-1"].state == "done"
        assert (jobs["job-1"].hits, jobs["job-1"].executed_points) == (1, 1)
        assert not jobs["job-1"].incomplete
        assert jobs["job-2"].state == "failed"
        assert jobs["job-2"].error == "boom"
        assert jobs["job-3"].state == "running"
        assert jobs["job-3"].incomplete
        assert (jobs["job-3"].points_done, jobs["job-3"].points_total) == (2, 3)
        assert jobs["job-4"].state == "timed-out"
        assert "5.0" in jobs["job-4"].error

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_jobs(tmp_path / "absent.ndjson") == {}

    def test_torn_tail_drops_only_the_torn_record(self, tmp_path):
        path = tmp_path / "jobs.ndjson"
        with JobJournal(path) as journal:
            journal.record_submitted("job-1", "fp-1", {"scheme": "secded"}, 2)
            journal.record_started("job-1")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"done","job":"job-1","hi')  # torn write

        jobs = replay_jobs(path)
        assert jobs["job-1"].state == "running"  # done record was torn off
        assert jobs["job-1"].incomplete

    def test_records_for_torn_off_submissions_are_skipped(self, tmp_path):
        path = tmp_path / "jobs.ndjson"
        with JobJournal(path) as journal:
            journal.record_started("ghost")  # its submitted line was lost
            journal.record_point("ghost", 1, 2)
        assert replay_jobs(path) == {}

    def test_headerless_file_is_refused(self, tmp_path):
        path = tmp_path / "jobs.ndjson"
        path.write_text('{"kind":"started","job":"job-1"}\n', encoding="utf-8")
        with pytest.raises(JobJournalError):
            replay_jobs(path)

    def test_reopen_appends_without_a_second_header(self, tmp_path):
        path = tmp_path / "jobs.ndjson"
        JobJournal(path).close()
        JobJournal(path).close()
        records = read_ndjson(path)
        assert [r["kind"] for r in records] == ["header"]


class TestJobClaims:
    def test_claim_race_has_one_winner_until_release(self, tmp_path):
        journal = tmp_path / "jobs.ndjson"
        first = JobClaims.for_journal(journal)
        second = JobClaims.for_journal(journal)
        assert first.claim("fp-1") is True
        assert second.claim("fp-1") is False  # owner (this pid) is alive
        # release() is a no-op for claims an instance does not hold.
        second.release("fp-1")
        assert second.claim("fp-1") is False
        first.release("fp-1")
        assert second.claim("fp-1") is True
        second.release_all()
        assert first.claim("fp-1") is True

    def test_dead_owner_claim_is_stolen(self, tmp_path):
        journal = tmp_path / "jobs.ndjson"
        claims = JobClaims.for_journal(journal)
        claims.directory.mkdir(parents=True, exist_ok=True)
        # A claim owned by a PID that no longer exists — the kill -9
        # aftermath.  A freshly reaped child gives a real, dead PID.
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        (claims.directory / "fp-dead").write_text(
            str(child.pid), encoding="utf-8"
        )
        assert claims.claim("fp-dead") is True

    def test_unreadable_claim_is_stolen(self, tmp_path):
        journal = tmp_path / "jobs.ndjson"
        claims = JobClaims.for_journal(journal)
        claims.directory.mkdir(parents=True, exist_ok=True)
        (claims.directory / "fp-torn").write_text("", encoding="utf-8")
        assert claims.claim("fp-torn") is True


class TestJournalRecovery:
    def test_unclean_drain_requeues_and_restart_reruns(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        journal = tmp_path / "jobs.ndjson"
        hold = threading.Event()  # pin the job running, then pull the plug

        with ServerThread(
            store, journal=journal, chaos_hold=hold, drain=False
        ) as handle:
            status, submitted = _request(handle.url + "/submit", payload=SPEC)
            assert status == 202
            job_id = submitted["job"]
            _wait(handle.url, job_id, states=("running",))
            server = handle.server
        # drain=False abandoned the held job: the journal has no
        # terminal record for it, which is the recovery contract.
        assert server._last_drain_clean is False
        replayed = replay_jobs(journal)
        assert replayed[job_id].incomplete

        # A restarted server on the same journal + store re-runs it to
        # completion under the same job id.
        with ServerThread(store, journal=journal) as handle:
            recovered = _wait(handle.url, job_id)
            assert recovered["state"] == "done"
            assert recovered["recovered"] is True
            status, result = _request(f"{handle.url}/result/{job_id}")
            assert status == 200
            _, stats = _request(handle.url + "/stats")
            assert stats["recovered_jobs"] == 1
            assert stats["journal"]["path"] == str(journal)
        assert len(result["results"]) == len(SPEC["vdds"])
        assert replay_jobs(journal)[job_id].state == "done"

    def test_recovered_job_resumes_warm_from_the_store(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        journal = tmp_path / "jobs.ndjson"
        # The store already holds every point (the killed server got
        # that far); the journal says the job never finished.
        reference = _grid_into(ResultStore(store_path))
        job_id, _ = _write_incomplete_job(journal)

        with ServerThread(ResultStore(store_path), journal=journal) as handle:
            done = _wait(handle.url, job_id)
            assert done["state"] == "done"
            assert done["recovered"] is True
            # Warm resume: every point served from the store, none
            # re-executed.
            assert done["hits"] == len(SPEC["vdds"])
            assert done["executed_points"] == 0
            status, result = _request(f"{handle.url}/result/{job_id}")
            assert status == 200
            _, stats = _request(handle.url + "/stats")
            assert stats["recovered_jobs"] == 1
            assert stats["store"]["hits"] >= len(SPEC["vdds"])
        # Bit-identical to the original (pre-crash) computation.
        assert json.dumps(result["results"], sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_done_jobs_rehydrate_results_from_the_store(self, tmp_path):
        store_path = tmp_path / "s.sqlite"
        journal = tmp_path / "jobs.ndjson"
        _grid_into(ResultStore(store_path))
        normalized = normalize_spec(dict(SPEC))
        with JobJournal(journal) as handle:
            handle.record_submitted(
                "job-0001-done", spec_fingerprint(normalized), normalized, 2
            )
            handle.record_started("job-0001-done")
            handle.record_done("job-0001-done", hits=2, executed_points=0)

        with ServerThread(ResultStore(store_path), journal=journal) as handle:
            # Terminal on replay: nothing to recover or re-run ...
            _, stats = _request(handle.url + "/stats")
            assert stats["recovered_jobs"] == 0
            assert stats["jobs"] == {"done": 1}
            # ... and /result rehydrates lazily from the store.
            status, result = _request(handle.url + "/result/job-0001-done")
            assert status == 200
            assert len(result["results"]) == len(SPEC["vdds"])
            # The done fingerprint still absorbs resubmissions.
            status, joined = _request(handle.url + "/submit", payload=SPEC)
            assert (status, joined["deduplicated"]) == (202, True)

    def test_two_servers_on_one_journal_never_double_run(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        journal = tmp_path / "jobs.ndjson"
        job_id, fingerprint = _write_incomplete_job(journal)
        hold = threading.Event()

        with ServerThread(
            store, journal=journal, chaos_hold=hold
        ) as winner:
            # The winner claimed the fingerprint and is (held) running.
            _wait(winner.url, job_id, states=("running",))
            assert (JobClaims.for_journal(journal).directory / fingerprint).exists()

            with ServerThread(
                store, journal=journal, drain=False
            ) as loser:
                # The loser replays the same journal but loses the
                # claim race: the job stays visible, unrun.
                status, seen = _request(f"{loser.url}/status/{job_id}")
                assert status == 200
                assert seen["recovered"] is False
                _, stats = _request(loser.url + "/stats")
                assert stats["recovered_jobs"] == 0

                hold.set()
                done = _wait(winner.url, job_id)
                assert done["state"] == "done"
                _, stats = _request(winner.url + "/stats")
                assert stats["recovered_jobs"] == 1
                # The loser never executed anything into the store.
                assert stats["store"]["puts"] == len(SPEC["vdds"])
        assert len(store) == len(SPEC["vdds"])


class _ScriptedTransport:
    """Deterministic fake transport for ServeClient tests.

    Each scripted step is either an exception to raise or a
    ``(status, payload, headers)`` triple to return.
    """

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def __call__(self, url, data, timeout_s):
        self.calls.append((url, data))
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        status, payload, headers = step
        return status, json.dumps(payload).encode("utf-8"), headers


class TestServeClient:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        sleeps = []
        transport = _ScriptedTransport(
            [urllib.error.URLError("down")] * 5
        )
        client = ServeClient(
            "http://test",
            max_retries=4,
            backoff_base_s=0.1,
            backoff_cap_s=0.4,
            sleep=sleeps.append,
            transport=transport,
        )
        assert [client.backoff_s(n) for n in range(5)] == [
            0.1, 0.2, 0.4, 0.4, 0.4
        ]
        with pytest.raises(ServerUnavailableError):
            client.healthz()
        assert sleeps == [0.1, 0.2, 0.4, 0.4, 0.4]
        assert len(transport.calls) == 5

    def test_transient_failure_then_success(self):
        sleeps = []
        transport = _ScriptedTransport(
            [
                urllib.error.URLError("refused"),
                ConnectionResetError("reset"),
                (200, {"ok": True, "jobs": 0}, {}),
            ]
        )
        client = ServeClient(
            "http://test", sleep=sleeps.append, transport=transport
        )
        assert client.healthz()["ok"] is True
        assert sleeps == [0.1, 0.2]

    def test_429_sleeps_for_retry_after_then_retries(self):
        sleeps = []
        accepted = {"job": "job-1", "state": "queued", "deduplicated": False}
        transport = _ScriptedTransport(
            [
                (429, {"error": "at capacity"}, {"retry-after": "0.05"}),
                (202, accepted, {}),
            ]
        )
        client = ServeClient(
            "http://test", sleep=sleeps.append, transport=transport
        )
        submitted = client.submit(SPEC)
        assert submitted["job"] == "job-1"
        assert sleeps == [0.05]
        # The client knows the idempotency key before the wire does.
        assert submitted["fingerprint"] == spec_fingerprint(
            normalize_spec(dict(SPEC))
        )

    def test_retry_after_is_capped_by_backoff_cap(self):
        sleeps = []
        transport = _ScriptedTransport(
            [
                (429, {"error": "at capacity"}, {"retry-after": "999"}),
                (202, {"job": "job-1", "state": "queued"}, {}),
            ]
        )
        client = ServeClient(
            "http://test",
            backoff_cap_s=0.3,
            sleep=sleeps.append,
            transport=transport,
        )
        client.submit(SPEC)
        assert sleeps == [0.3]

    def test_5xx_is_retried_on_submit_but_not_on_reads(self):
        sleeps = []
        transport = _ScriptedTransport(
            [
                (500, {"error": "restarting"}, {}),
                (202, {"job": "job-1", "state": "queued"}, {}),
            ]
        )
        client = ServeClient(
            "http://test", sleep=sleeps.append, transport=transport
        )
        assert client.submit(SPEC)["job"] == "job-1"
        assert sleeps == [0.1]

        read_transport = _ScriptedTransport(
            [(500, {"error": "job failed"}, {})]
        )
        reader = ServeClient(
            "http://test", sleep=sleeps.append, transport=read_transport
        )
        assert reader.result("job-1") == (500, {"error": "job failed"})
        assert len(read_transport.calls) == 1  # no retry burned

    def test_4xx_is_immediately_fatal(self):
        transport = _ScriptedTransport(
            [(400, {"error": "spec needs 'vdd' or 'vdds'"}, {})]
        )
        client = ServeClient(
            "http://test", sleep=lambda _s: None, transport=transport
        )
        with pytest.raises(ServeClientError, match="answered 400"):
            client.submit(SPEC)
        assert len(transport.calls) == 1

    def test_wait_polls_to_done_and_fetches_result(self):
        running = {"job": "job-1", "state": "running"}
        done = {"job": "job-1", "state": "done"}
        payload = {"job": "job-1", "state": "done", "results": [{"vdd": 0.44}]}
        transport = _ScriptedTransport(
            [
                (200, running, {}),
                (200, done, {}),
                (200, payload, {}),
            ]
        )
        client = ServeClient(
            "http://test", sleep=lambda _s: None, transport=transport
        )
        assert client.wait("job-1", poll_s=0.0)["results"] == [{"vdd": 0.44}]

    def test_wait_raises_on_failed_and_timed_out_jobs(self):
        for state in ("failed", "timed-out"):
            transport = _ScriptedTransport(
                [(200, {"job": "job-1", "state": state, "error": "x"}, {})]
            )
            client = ServeClient(
                "http://test", sleep=lambda _s: None, transport=transport
            )
            with pytest.raises(JobFailedError, match=state):
                client.wait("job-1")

    def test_wait_deadline_uses_injected_clock(self):
        ticks = iter(range(100))
        transport = _ScriptedTransport(
            [(200, {"job": "job-1", "state": "running"}, {})] * 10
        )
        client = ServeClient(
            "http://test", sleep=lambda _s: None, transport=transport
        )
        with pytest.raises(ServeClientError, match="still 'running'"):
            client.wait(
                "job-1", poll_s=0.0, deadline_s=3,
                clock=lambda: next(ticks),
            )
