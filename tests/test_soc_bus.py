"""Tests for the shared bus substrate."""

import pytest

from repro.soc.bus import SharedBus


@pytest.fixture
def bus():
    bus = SharedBus(cycles_per_word=2, wire_cap_f=50e-15)
    bus.register_master("cpu", priority=0)
    bus.register_master("dma", priority=1)
    return bus


class TestRegistration:
    def test_masters_listed(self, bus):
        assert bus.masters == {"cpu": 0, "dma": 1}

    def test_duplicate_rejected(self, bus):
        with pytest.raises(ValueError, match="already"):
            bus.register_master("cpu", priority=2)

    def test_unknown_master_rejected(self, bus):
        with pytest.raises(KeyError):
            bus.request("rogue", 4, 0)


class TestArbitration:
    def test_idle_bus_grants_immediately(self, bus):
        waited, done = bus.request("cpu", 4, now_cycle=10)
        assert waited == 0
        assert done == 10 + 8  # 4 words x 2 cycles

    def test_busy_bus_stalls_second_master(self, bus):
        bus.request("cpu", 4, now_cycle=0)          # busy until 8
        waited, done = bus.request("dma", 2, now_cycle=3)
        assert waited == 5                          # 8 - 3
        assert done == 8 + 4

    def test_back_to_back_tenures_chain(self, bus):
        bus.request("cpu", 1, 0)     # busy until 2
        bus.request("cpu", 1, 2)     # no wait
        assert bus.stats.wait_cycles == 0
        assert bus.busy_until == 4

    def test_late_request_after_idle_gap(self, bus):
        bus.request("cpu", 1, 0)
        waited, done = bus.request("dma", 1, now_cycle=100)
        assert waited == 0
        assert done == 102

    def test_stats_accumulate(self, bus):
        bus.request("cpu", 4, 0)
        bus.request("dma", 2, 0)
        assert bus.stats.transactions == 2
        assert bus.stats.busy_cycles == 12
        assert bus.stats.per_master["dma"]["wait_cycles"] == 8

    def test_validation(self, bus):
        with pytest.raises(ValueError):
            bus.request("cpu", 0, 0)
        with pytest.raises(ValueError):
            bus.request("cpu", 1, -1)


class TestEnergyAndUtilisation:
    def test_energy_quadratic_in_vdd(self, bus):
        assert bus.transfer_energy(10, 1.0) == pytest.approx(
            4.0 * bus.transfer_energy(10, 0.5)
        )

    def test_energy_linear_in_words(self, bus):
        assert bus.transfer_energy(20, 0.8) == pytest.approx(
            2.0 * bus.transfer_energy(10, 0.8)
        )

    def test_utilisation(self, bus):
        bus.request("cpu", 5, 0)  # 10 busy cycles
        assert bus.utilisation(40) == pytest.approx(0.25)
        assert bus.utilisation(5) == 1.0  # clipped

    def test_validation(self, bus):
        with pytest.raises(ValueError):
            bus.transfer_energy(0, 1.0)
        with pytest.raises(ValueError):
            bus.utilisation(0)
        with pytest.raises(ValueError):
            SharedBus(cycles_per_word=0)
