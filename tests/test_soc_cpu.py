"""Tests for the NTC32 CPU interpreter."""

import pytest

from repro.soc.assembler import assemble
from repro.soc.cpu import Cpu, StopReason
from repro.soc.memory import FaultyMemory
from repro.soc.platform import Platform
from repro.soc.ports import RawPort


def run_program(source, data=None, max_instructions=1_000_000):
    """Assemble and run on a fresh raw platform; return the platform."""
    im = FaultyMemory("IM", 2048, 32)
    sp = FaultyMemory("SP", 2048, 32)
    platform = Platform(im, RawPort(im), sp, RawPort(sp))
    platform.load_program(assemble(source))
    if data:
        platform.load_data(data)
    platform.run_until_stop(max_instructions)
    return platform


class TestArithmetic:
    def test_add_sub(self):
        plat = run_program(
            "li r1, 30\nli r2, 12\nadd r3, r1, r2\nsub r4, r1, r2\n"
            "sw r3, r0, 0\nsw r4, r0, 1\nhalt"
        )
        assert plat.read_data(0, 2) == [42, 18]

    def test_wraparound_add(self):
        plat = run_program(
            "li r1, 0xFFFFFFFF\naddi r2, r1, 1\nsw r2, r0, 0\nhalt"
        )
        assert plat.read_data(0, 1) == [0]

    def test_signed_mul(self):
        plat = run_program(
            "li r1, -7\nli r2, 6\nmul r3, r1, r2\nsw r3, r0, 0\nhalt"
        )
        assert plat.read_data(0, 1) == [(-42) & 0xFFFFFFFF]

    def test_mulh(self):
        # 0x10000 * 0x10000 = 2^32: low word 0, high word 1.
        plat = run_program(
            "li r1, 0x10000\nmul r2, r1, r1\nmulh r3, r1, r1\n"
            "sw r2, r0, 0\nsw r3, r0, 1\nhalt"
        )
        assert plat.read_data(0, 2) == [0, 1]

    def test_logic_ops(self):
        plat = run_program(
            "li r1, 0xF0\nli r2, 0xCC\n"
            "and r3, r1, r2\nor r4, r1, r2\nxor r5, r1, r2\n"
            "sw r3, r0, 0\nsw r4, r0, 1\nsw r5, r0, 2\nhalt"
        )
        assert plat.read_data(0, 3) == [0xC0, 0xFC, 0x3C]

    def test_shifts(self):
        plat = run_program(
            "li r1, -16\nsrai r2, r1, 2\nsrli r3, r1, 28\nslli r4, r1, 1\n"
            "sw r2, r0, 0\nsw r3, r0, 1\nsw r4, r0, 2\nhalt"
        )
        assert plat.read_data(0, 3) == [
            (-4) & 0xFFFFFFFF, 0xF, (-32) & 0xFFFFFFFF
        ]

    def test_slt_signed_comparison(self):
        plat = run_program(
            "li r1, -1\nli r2, 1\nslt r3, r1, r2\nslt r4, r2, r1\n"
            "sw r3, r0, 0\nsw r4, r0, 1\nhalt"
        )
        assert plat.read_data(0, 2) == [1, 0]

    def test_lui_shifts_by_12(self):
        plat = run_program("lui r1, 5\nsw r1, r0, 0\nhalt")
        assert plat.read_data(0, 1) == [5 << 12]

    def test_r0_is_hardwired_zero(self):
        plat = run_program("li r1, 7\nadd r0, r1, r1\nsw r0, r0, 0\nhalt")
        assert plat.read_data(0, 1) == [0]


class TestControlFlow:
    def test_branch_taken_costs_extra_cycle(self):
        taken = run_program("li r1, 1\nbeq r1, r1, skip\nskip:\nhalt")
        untaken = run_program("li r1, 1\nbne r1, r1, skip\nskip:\nhalt")
        assert taken.cpu.state.cycles == untaken.cpu.state.cycles + 1

    def test_signed_branch_comparison(self):
        plat = run_program(
            "li r1, -5\nli r2, 3\nblt r1, r2, yes\nsw r0, r0, 0\nhalt\n"
            "yes:\nli r3, 1\nsw r3, r0, 0\nhalt"
        )
        assert plat.read_data(0, 1) == [1]

    def test_jal_links_and_jalr_returns(self):
        plat = run_program(
            """
                jal  r15, sub
                sw   r1, r0, 0
                halt
            sub:
                li   r1, 99
                jalr r0, r15, 0
            """
        )
        assert plat.read_data(0, 1) == [99]

    def test_runaway_detection(self):
        with pytest.raises(Exception) as excinfo:
            run_program("spin:\nj spin\nhalt", max_instructions=1000)
        assert "runaway" in str(excinfo.value)

    def test_yield_pauses_and_resumes(self):
        im = FaultyMemory("IM", 64, 32)
        sp = FaultyMemory("SP", 64, 32)
        platform = Platform(im, RawPort(im), sp, RawPort(sp))
        platform.load_program(
            assemble("li r1, 1\nyield\naddi r1, r1, 1\nsw r1, r0, 0\nhalt")
        )
        assert platform.run_until_stop() is StopReason.YIELD
        assert platform.run_until_stop() is StopReason.HALT
        assert platform.read_data(0, 1) == [2]


class TestMemoryInstructions:
    def test_load_store_with_offsets(self):
        plat = run_program(
            "li r1, 10\nli r2, 77\nsw r2, r1, 5\nlw r3, r1, 5\n"
            "sw r3, r0, 0\nhalt"
        )
        assert plat.read_data(0, 1) == [77]
        assert plat.read_data(15, 1) == [77]

    def test_counters_track_accesses(self):
        plat = run_program("li r1, 5\nsw r1, r0, 0\nlw r2, r0, 0\nhalt")
        assert plat.sp.counters.writes == 1
        assert plat.sp.counters.reads == 1
        # Fetches: 4 instructions.
        assert plat.im.counters.reads == 4

    def test_cycle_accounting(self):
        plat = run_program("li r1, 5\nsw r1, r0, 0\nhalt")
        # addi(1) + sw(2) + halt(1)
        assert plat.cpu.state.cycles == 4
        assert plat.cpu.state.instructions == 3


class TestCpuValidation:
    def test_run_rejects_bad_limit(self):
        cpu = Cpu(lambda a: 0, lambda a: 0, lambda a, v: None)
        with pytest.raises(ValueError):
            cpu.run(max_instructions=0)
