"""Invalidation and fallback edges of the clean-burst fast lane.

The differential fuzzer (``tests/test_soc_fuzz.py``) sweeps the broad
state space; this file pins the specific hazards the fast lane's
caches must survive: forced faults queued mid-run, supply moves
between YIELDs, self-modifying instruction memory, architectural
rollback, latent corruption, unsupported port wiring, and the exact
semantics of the instruction limit.

Every test runs the same scenario through a reference platform
(``fast_lane=False``) and a fast-lane platform and requires identical
observable state — the contract is always "bit-exact with the
interpreter", never a hand-computed expectation.
"""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.ecc import SecdedCodec
from repro.soc.assembler import assemble
from repro.soc.cpu import StopReason
from repro.soc.fastlane import FastLaneEngine
from repro.soc.faults import VoltageFaultModel
from repro.soc.memory import FaultyMemory
from repro.soc.platform import Platform, SystemFailure
from repro.soc.ports import CodecPort, RawPort
from repro.soc.profiler import ProfilingPort

_MODEL = ACCESS_CELL_BASED_40NM_TYPICAL
_IM_WORDS = 64
_SP_WORDS = 64


def _build(scheme="raw", vdd=0.55, seed=11, fast_lane=False,
           profile_im=False):
    def faults(width, salt):
        return VoltageFaultModel(
            _MODEL, width, vdd, rng=np.random.default_rng(seed * 2 + salt)
        )

    if scheme == "raw":
        im = FaultyMemory("IM", _IM_WORDS, 32, faults=faults(32, 0))
        sp = FaultyMemory("SP", _SP_WORDS, 32, faults=faults(32, 1))
        im_port, sp_port = RawPort(im), RawPort(sp)
    else:
        codec = SecdedCodec()
        width = codec.code_bits
        im = FaultyMemory("IM", _IM_WORDS, width, faults=faults(width, 0))
        sp = FaultyMemory("SP", _SP_WORDS, width, faults=faults(width, 1))
        im_port = CodecPort(im, codec, auto_scrub=True)
        sp_port = CodecPort(sp, codec, auto_scrub=True)
    if profile_im:
        im_port = ProfilingPort(im_port)
    return Platform(im, im_port, sp, sp_port, fast_lane=fast_lane)


def _pair(**kwargs):
    return _build(fast_lane=False, **kwargs), _build(fast_lane=True, **kwargs)


def _state_tuple(platform):
    s = platform.cpu.state
    return (s.pc, list(s.registers), s.cycles, s.instructions,
            s.taken_branches)


def _assert_same(reference, fast):
    assert _state_tuple(fast) == _state_tuple(reference)
    assert fast.im.snapshot() == reference.im.snapshot()
    assert fast.sp.snapshot() == reference.sp.snapshot()
    assert fast.result() == reference.result()
    for mem_f, mem_r in ((fast.im, reference.im), (fast.sp, reference.sp)):
        assert (
            mem_f.faults.rng.bit_generator.state
            == mem_r.faults.rng.bit_generator.state
        )
        assert mem_f.faults.injected_bits == mem_r.faults.injected_bits
        assert mem_f.faults.injected_events == mem_r.faults.injected_events


# A store/compute loop with a yield per iteration: r1 counts down from
# r2's initial value, each iteration stores the counter and yields.
_LOOP = assemble("""
    addi r2, r0, 5
loop:
    sw   r2, r0, 8
    lw   r3, r0, 8
    add  r4, r4, r3
    yield
    addi r2, r2, -1
    bne  r2, r0, loop
    sw   r4, r0, 9
    halt
""")


def _load(platform, words=_LOOP):
    platform.load_program(words)
    platform.load_data([0] * 16)


def _drain(platform, max_instructions=20_000, max_yields=64):
    """Run through YIELDs until HALT (or a bounded yield budget).

    Every call passes the same bounded ``max_instructions`` so that a
    fault-corrupted runaway loop fails fast — and identically — in
    both lanes instead of grinding to the interpreter's default cap.
    """
    for _ in range(max_yields):
        if platform.run_until_stop(max_instructions) is StopReason.HALT:
            return StopReason.HALT
    return StopReason.YIELD


@pytest.mark.parametrize("scheme", ["raw", "secded"])
def test_forced_fault_mid_run(scheme):
    """force_next() queued between YIELDs lands on the same access."""
    reference, fast = _pair(scheme=scheme)
    for platform in (reference, fast):
        _load(platform)
        assert platform.run_until_stop() is StopReason.YIELD
        # Poison the very next SP access and (separately) a later IM
        # fetch: clean_run_length() must report 0 while forced masks
        # are queued so the slow path consumes them faithfully.
        platform.sp.faults.force_next(0b1)          # flips sw data bit 0
        platform.im.faults.force_next(0)            # explicit no-op mask
        _drain(platform)
    _assert_same(reference, fast)
    # The forced SP flip really happened (and, under SECDED, was
    # corrected; raw stores it silently).
    assert fast.sp.faults.injected_events >= 1


@pytest.mark.parametrize("scheme", ["raw", "secded"])
def test_set_vdd_mid_run(scheme):
    """A supply move between YIELDs reshapes both lanes identically."""
    reference, fast = _pair(scheme=scheme, vdd=0.55)
    for platform in (reference, fast):
        _load(platform)
        assert platform.run_until_stop() is StopReason.YIELD
        platform.im.faults.set_vdd(0.32)
        platform.sp.faults.set_vdd(0.32)
        try:
            _drain(platform)
        except SystemFailure:
            pass  # plausible at 0.32 V; both lanes must agree
    _assert_same(reference, fast)


def test_im_self_modification_between_yields():
    """A poke into the IM invalidates the predecoded view."""
    reference, fast = _pair(scheme="raw")
    patch = assemble("addi r2, r0, 0")[0]  # collapse the countdown
    for platform in (reference, fast):
        _load(platform)
        assert platform.run_until_stop() is StopReason.YIELD
        # Overwrite the decrement at word 5 so the loop exits after the
        # next iteration.  The fast lane predecoded this word already;
        # the memory version bump must drop the stale entry.
        platform.im.poke(5, patch)
        _drain(platform)
    _assert_same(reference, fast)
    assert fast.cpu.state.instructions < 5 * 6 + 4


def test_restore_cpu_rollback():
    """Architectural rollback between YIELDs replays identically."""
    reference, fast = _pair(scheme="secded")
    for platform in (reference, fast):
        _load(platform)
        snapshot = platform.snapshot_cpu()
        assert platform.run_until_stop() is StopReason.YIELD
        assert platform.run_until_stop() is StopReason.YIELD
        platform.restore_cpu(snapshot)
        _drain(platform)
    _assert_same(reference, fast)


@pytest.mark.parametrize("auto_scrub", [False, True])
def test_latent_corruption_takes_slow_path(auto_scrub):
    """A corrupted stored word never enters the clean view.

    The slow path corrects it (bumping corrected_words) and, with
    auto_scrub, writes the repaired codeword back; either way the fast
    lane's behaviour matches the interpreter exactly.
    """
    codec = SecdedCodec()
    platforms = []
    for fast_lane in (False, True):
        im = FaultyMemory("IM", _IM_WORDS, codec.code_bits)
        sp = FaultyMemory("SP", _SP_WORDS, codec.code_bits)
        platform = Platform(
            im,
            CodecPort(im, codec, auto_scrub=auto_scrub),
            sp,
            CodecPort(sp, codec, auto_scrub=auto_scrub),
            fast_lane=fast_lane,
        )
        # Two loads of the same address, so a scrubbed word is read
        # clean the second time while an unscrubbed one corrects again.
        _load(platform, assemble(
            "lw r1, r0, 8\nlw r2, r0, 8\nadd r3, r1, r2\nhalt"
        ))
        # Flip one stored bit in the data word at SP address 8 *and*
        # in the IM word at 0 (the first lw) — both must decode
        # through the faithful path and be counted as corrections.
        sp.poke(8, sp.peek(8) ^ 0b100)
        im.poke(0, im.peek(0) ^ 0b100)
        _drain(platform)
        platforms.append(platform)
    reference, fast = platforms
    assert _state_tuple(fast) == _state_tuple(reference)
    assert fast.im.snapshot() == reference.im.snapshot()
    assert fast.sp.snapshot() == reference.sp.snapshot()
    assert fast.result() == reference.result()
    assert fast.result().corrected_words >= 2


def test_profiling_port_falls_back_to_interpreter():
    """Unsupported wiring: the engine declines, Cpu.run takes over."""
    platform = _build(profile_im=True, fast_lane=True)
    assert not FastLaneEngine.supports(platform)
    _load(platform)
    _drain(platform)
    assert platform._fast_engine is None
    assert platform.im_port.profile.fetches == (
        platform.cpu.state.instructions
    )
    # And the run still matches a plain reference platform.
    reference = _build(fast_lane=False)
    _load(reference)
    _drain(reference)
    assert _state_tuple(platform) == _state_tuple(reference)


def test_execution_limit_parity():
    """The runaway failure fires at the same instruction, same pc,
    with the same message, in both lanes."""
    words = assemble("addi r1, r1, 1\njal r0, 0")
    failures = []
    for fast_lane in (False, True):
        platform = _build(fast_lane=fast_lane)
        _load(platform, words)
        with pytest.raises(SystemFailure) as excinfo:
            platform.run_until_stop(max_instructions=101)
        failures.append((str(excinfo.value), _state_tuple(platform)))
    assert failures[0] == failures[1]
    assert "runaway" in failures[0][0]


def test_halt_on_limit_instruction_returns():
    """HALT as the limit-th instruction halts — it does not raise."""
    words = assemble("addi r1, r0, 7\nhalt")
    for fast_lane in (False, True):
        platform = _build(fast_lane=fast_lane)
        _load(platform, words)
        assert platform.run_until_stop(max_instructions=2) is (
            StopReason.HALT
        )
        assert platform.cpu.state.instructions == 2


def test_run_rejects_nonpositive_limit():
    platform = _build(fast_lane=True)
    _load(platform)
    with pytest.raises(ValueError):
        platform.run_until_stop(max_instructions=0)


def test_engine_rebuilt_when_wiring_changes():
    """Swapping a port mid-life forces a rebuild, not a stale engine."""
    platform = _build(fast_lane=True)
    _load(platform)
    assert platform.run_until_stop() is StopReason.YIELD
    first = platform._fast_engine
    assert isinstance(first, FastLaneEngine)
    platform.sp_port = RawPort(platform.sp)
    assert platform.run_until_stop() is StopReason.YIELD
    second = platform._fast_engine
    assert second is not first
    assert second.matches(platform)
