"""Differential fuzzing of the NTC32 CPU.

Hypothesis generates random straight-line ALU programs; an independent
golden interpreter (written directly against the ISA spec, sharing no
code with :mod:`repro.soc.cpu`) predicts the architectural state, and
both must agree register for register.  This is the test that keeps
the FFT's correctness proofs honest: if the CPU and the golden model
ever disagree, one of them misreads the spec.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import ACCESS_CELL_BASED_40NM_TYPICAL
from repro.ecc import SecdedCodec
from repro.soc.assembler import assemble
from repro.soc.cpu import Cpu, StopReason
from repro.soc.faults import VoltageFaultModel
from repro.soc.isa import Opcode
from repro.soc.memory import FaultyMemory
from repro.soc.platform import DetectedError, Platform, SystemFailure
from repro.soc.ports import CodecPort, DetectOnlyCodec, RawPort

_MASK32 = 0xFFFFFFFF

_R_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
          "mul", "mulh"]
_I_OPS = ["addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti"]


def _signed(value):
    return value - (1 << 32) if value & 0x80000000 else value


def _golden_r(op, b, c):
    """Golden semantics of R-type ops on 32-bit unsigned patterns."""
    if op == "add":
        return (b + c) & _MASK32
    if op == "sub":
        return (b - c) & _MASK32
    if op == "and":
        return b & c
    if op == "or":
        return b | c
    if op == "xor":
        return b ^ c
    if op == "sll":
        return (b << (c & 31)) & _MASK32
    if op == "srl":
        return b >> (c & 31)
    if op == "sra":
        return (_signed(b) >> (c & 31)) & _MASK32
    if op == "slt":
        return int(_signed(b) < _signed(c))
    if op == "mul":
        return (_signed(b) * _signed(c)) & _MASK32
    if op == "mulh":
        return ((_signed(b) * _signed(c)) >> 32) & _MASK32
    raise AssertionError(op)


def _golden_i(op, b, imm):
    if op == "addi":
        return (b + imm) & _MASK32
    # Logical immediates are sign-extended (RISC-V convention), so a
    # negative imm applies as its full 32-bit two's-complement pattern.
    if op == "andi":
        return b & (imm & _MASK32)
    if op == "ori":
        return b | (imm & _MASK32)
    if op == "xori":
        return b ^ (imm & _MASK32)
    if op == "slli":
        return (b << (imm & 31)) & _MASK32
    if op == "srli":
        return b >> (imm & 31)
    if op == "srai":
        return (_signed(b) >> (imm & 31)) & _MASK32
    if op == "slti":
        return int(_signed(b) < imm)
    raise AssertionError(op)


def _golden_run(instructions, seed_regs):
    regs = list(seed_regs)
    for kind, payload in instructions:
        if kind == "r":
            op, a, b, c = payload
            result = _golden_r(op, regs[b], regs[c])
        elif kind == "i":
            op, a, b, imm = payload
            result = _golden_i(op, regs[b], imm)
        else:  # lui
            a, imm = payload
            result = (imm << 12) & _MASK32
        if a != 0:
            regs[a] = result
    return regs


@st.composite
def alu_programs(draw):
    """Random straight-line programs plus seed register values."""
    seed_regs = [0] + [
        draw(st.integers(0, _MASK32)) for _ in range(15)
    ]
    length = draw(st.integers(min_value=1, max_value=25))
    instructions = []
    for _ in range(length):
        kind = draw(st.sampled_from(["r", "i", "lui"]))
        a = draw(st.integers(0, 15))
        if kind == "r":
            op = draw(st.sampled_from(_R_OPS))
            b = draw(st.integers(0, 15))
            c = draw(st.integers(0, 15))
            instructions.append(("r", (op, a, b, c)))
        elif kind == "i":
            op = draw(st.sampled_from(_I_OPS))
            b = draw(st.integers(0, 15))
            imm = draw(st.integers(-(1 << 13), (1 << 13) - 1))
            if op in ("slli", "srli", "srai"):
                imm = draw(st.integers(0, 31))
            instructions.append(("i", (op, a, b, imm)))
        else:
            imm = draw(st.integers(0, (1 << 21) - 1))
            instructions.append(("lui", (a, imm)))
    return instructions, seed_regs


def _to_source(instructions):
    lines = []
    for kind, payload in instructions:
        if kind == "r":
            op, a, b, c = payload
            lines.append(f"{op} r{a}, r{b}, r{c}")
        elif kind == "i":
            op, a, b, imm = payload
            lines.append(f"{op} r{a}, r{b}, {imm}")
        else:
            a, imm = payload
            lines.append(f"lui r{a}, {imm}")
    lines.append("halt")
    return "\n".join(lines)


@given(program=alu_programs())
@settings(max_examples=300, deadline=None)
def test_cpu_matches_golden_model(program):
    instructions, seed_regs = program
    words = assemble(_to_source(instructions))
    memory = FaultyMemory("IM", max(len(words), 1), 32)
    memory.load(words)
    cpu = Cpu(
        fetch=memory.peek,
        load=lambda a: 0,
        store=lambda a, v: None,
    )
    cpu.state.registers = list(seed_regs)
    cpu.run(max_instructions=1000)
    expected = _golden_run(instructions, seed_regs)
    assert cpu.state.registers == expected


@given(program=alu_programs())
@settings(max_examples=100, deadline=None)
def test_r0_never_written(program):
    instructions, seed_regs = program
    seed_regs = [0] + seed_regs[1:]
    words = assemble(_to_source(instructions))
    memory = FaultyMemory("IM", max(len(words), 1), 32)
    memory.load(words)
    cpu = Cpu(fetch=memory.peek, load=lambda a: 0, store=lambda a, v: None)
    cpu.state.registers = list(seed_regs)
    cpu.run(max_instructions=1000)
    assert cpu.state.registers[0] == 0


def test_every_alu_opcode_covered_by_fuzz_tables():
    """The fuzz op tables must cover the full R/I ALU opcode sets."""
    from repro.soc.isa import I_TYPE, R_TYPE

    assert {op.name.lower() for op in R_TYPE} == set(_R_OPS)
    assert {op.name.lower() for op in I_TYPE} == set(_I_OPS)


def test_golden_tables_reject_unknown():
    import pytest

    with pytest.raises(AssertionError):
        _golden_r("nand", 1, 2)
    with pytest.raises(AssertionError):
        _golden_i("subi", 1, 2)


def test_opcode_enum_is_stable():
    """Binary compatibility: programs assembled today must decode the
    same tomorrow; pin the opcode numbering."""
    assert Opcode.ADD == 0x01
    assert Opcode.LW == 0x20
    assert Opcode.BEQ == 0x30
    assert Opcode.HALT == 0x3E
    assert Opcode.YIELD == 0x3F


# ---------------------------------------------------------------------------
# Differential fuzzing of the clean-burst fast lane
# ---------------------------------------------------------------------------
# The fast lane (repro.soc.fastlane) promises bit-exactness with the
# reference interpreter: same architectural state, same memory images,
# same counters, same fault statistics, and — the strongest claim —
# the same RNG stream consumption, so every later fault lands on the
# same access in both worlds.  Hypothesis generates random programs
# (ALU, loads/stores, branches, yields) and random supply voltages;
# the same platform is built twice with identically seeded fault
# engines, run once per lane, and fingerprinted.

_IM_WORDS = 64
_SP_WORDS = 64
_BRANCH_OPS = ["beq", "bne", "blt", "bge"]


@st.composite
def soc_programs(draw):
    """Random programs with memory traffic and control flow.

    Register seeds are biased toward small values so loads and stores
    mostly hit the scratchpad, with full-range outliers to exercise
    wild-access parity.  Branch offsets are mostly forward; runaway
    loops are fine — both lanes must then agree on the runaway
    failure, instruction for instruction.
    """
    seed_regs = [0] + [
        draw(
            st.one_of(
                st.integers(0, _SP_WORDS - 1),
                st.integers(0, _MASK32),
            )
        )
        for _ in range(15)
    ]
    length = draw(st.integers(min_value=1, max_value=20))
    lines = []
    for _ in range(length):
        kind = draw(
            st.sampled_from(
                ["r", "i", "lui", "lw", "sw", "branch", "yield"]
            )
        )
        a = draw(st.integers(0, 15))
        b = draw(st.integers(0, 15))
        if kind == "r":
            op = draw(st.sampled_from(_R_OPS))
            c = draw(st.integers(0, 15))
            lines.append(f"{op} r{a}, r{b}, r{c}")
        elif kind == "i":
            op = draw(st.sampled_from(_I_OPS))
            imm = draw(st.integers(-(1 << 13), (1 << 13) - 1))
            if op in ("slli", "srli", "srai"):
                imm = draw(st.integers(0, 31))
            lines.append(f"{op} r{a}, r{b}, {imm}")
        elif kind == "lui":
            lines.append(f"lui r{a}, {draw(st.integers(0, (1 << 21) - 1))}")
        elif kind == "lw":
            base = draw(st.sampled_from([0, b]))
            imm = draw(st.integers(0, _SP_WORDS - 1))
            lines.append(f"lw r{a}, r{base}, {imm}")
        elif kind == "sw":
            base = draw(st.sampled_from([0, b]))
            imm = draw(st.integers(0, _SP_WORDS - 1))
            lines.append(f"sw r{a}, r{base}, {imm}")
        elif kind == "branch":
            op = draw(st.sampled_from(_BRANCH_OPS))
            offset = draw(st.integers(-2, 3))
            lines.append(f"{op} r{a}, r{b}, {offset}")
        else:
            lines.append("yield")
    lines.append("halt")
    data = [draw(st.integers(0, _MASK32)) for _ in range(8)]
    return "\n".join(lines), seed_regs, data


def _build_soc(scheme, vdd, seed, fast_lane):
    """One platform; fault engines seeded deterministically per memory."""
    model = ACCESS_CELL_BASED_40NM_TYPICAL

    def faults(width, salt):
        return VoltageFaultModel(
            model, width, vdd, rng=np.random.default_rng(seed * 2 + salt)
        )

    if scheme == "raw":
        im = FaultyMemory("IM", _IM_WORDS, 32, faults=faults(32, 0))
        sp = FaultyMemory("SP", _SP_WORDS, 32, faults=faults(32, 1))
        im_port, sp_port = RawPort(im), RawPort(sp)
    else:
        codec = SecdedCodec()
        if scheme == "detect":
            codec = DetectOnlyCodec(codec)
        width = codec.code_bits
        im = FaultyMemory("IM", _IM_WORDS, width, faults=faults(width, 0))
        sp = FaultyMemory("SP", _SP_WORDS, width, faults=faults(width, 1))
        scrub = scheme == "secded"
        im_port = CodecPort(im, codec, auto_scrub=scrub)
        sp_port = CodecPort(sp, codec, auto_scrub=scrub)
    return Platform(im, im_port, sp, sp_port, fast_lane=fast_lane)


def _run_soc(platform, source, seed_regs, data, max_instructions=300):
    """Run to completion/failure; return a comparable outcome trace."""
    platform.load_program(assemble(source))
    platform.load_data(data)
    platform.cpu.state.registers = list(seed_regs)
    outcome = []
    try:
        for _ in range(6):  # bounded number of YIELD resumptions
            reason = platform.run_until_stop(max_instructions)
            outcome.append(reason.name)
            if reason is StopReason.HALT:
                break
    except SystemFailure as exc:
        outcome.append(("SystemFailure", exc.kind, str(exc)))
    except DetectedError as exc:
        outcome.append(("DetectedError", exc.module, exc.address))
    return outcome


def _fingerprint(platform):
    """Everything the bit-exactness contract covers, in one dict."""
    state = platform.cpu.state
    fp = {
        "pc": state.pc,
        "registers": list(state.registers),
        "cycles": state.cycles,
        "instructions": state.instructions,
        "taken_branches": state.taken_branches,
        "im_data": platform.im.snapshot(),
        "sp_data": platform.sp.snapshot(),
    }
    for name, mem, port in (
        ("im", platform.im, platform.im_port),
        ("sp", platform.sp, platform.sp_port),
    ):
        fp[f"{name}_counters"] = (mem.counters.reads, mem.counters.writes)
        fp[f"{name}_injected"] = (
            mem.faults.injected_bits,
            mem.faults.injected_events,
        )
        fp[f"{name}_rng"] = mem.faults.rng.bit_generator.state
        if hasattr(port, "stats"):
            stats = port.stats
            fp[f"{name}_stats"] = (
                stats.reads,
                stats.writes,
                stats.corrected_words,
                stats.detected_words,
            )
    return fp


@st.composite
def soc_scenarios(draw):
    program = draw(soc_programs())
    vdd = draw(st.sampled_from([0.55, 0.45, 0.40, 0.35, 0.30]))
    scheme = draw(st.sampled_from(["raw", "secded", "detect"]))
    seed = draw(st.integers(0, 1 << 16))
    return program, vdd, scheme, seed


@given(scenario=soc_scenarios())
@settings(max_examples=120, deadline=None)
def test_fast_lane_is_bit_exact(scenario):
    (source, seed_regs, data), vdd, scheme, seed = scenario
    reference = _build_soc(scheme, vdd, seed, fast_lane=False)
    fast = _build_soc(scheme, vdd, seed, fast_lane=True)
    ref_outcome = _run_soc(reference, source, seed_regs, data)
    fast_outcome = _run_soc(fast, source, seed_regs, data)
    assert fast_outcome == ref_outcome
    assert _fingerprint(fast) == _fingerprint(reference)
    # SimulationResult is derived from the fingerprint, but it is the
    # object every experiment consumes — pin it directly too.
    assert fast.result() == reference.result()


@given(scenario=soc_scenarios())
@settings(max_examples=25, deadline=None)
def test_fast_lane_bit_exact_with_profiling(scenario):
    """Profiling on must be bit-exactness-neutral on both engines.

    Outcomes, architectural fingerprints (including fault statistics
    and RNG bit-generator positions) must match the unprofiled runs
    exactly, while the ``profile.*`` instruments actually populate.
    """
    from repro.obs import MetricsRegistry, names, scoped_metrics
    from repro.obs.profile import scoped_profiling

    (source, seed_regs, data), vdd, scheme, seed = scenario
    reference = _build_soc(scheme, vdd, seed, fast_lane=False)
    fast = _build_soc(scheme, vdd, seed, fast_lane=True)
    ref_outcome = _run_soc(reference, source, seed_regs, data)
    fast_outcome = _run_soc(fast, source, seed_regs, data)

    prof_reference = _build_soc(scheme, vdd, seed, fast_lane=False)
    prof_fast = _build_soc(scheme, vdd, seed, fast_lane=True)
    registry = MetricsRegistry()
    with scoped_metrics(registry), scoped_profiling():
        prof_ref_outcome = _run_soc(
            prof_reference, source, seed_regs, data
        )
        prof_fast_outcome = _run_soc(prof_fast, source, seed_regs, data)

    assert prof_ref_outcome == ref_outcome
    assert prof_fast_outcome == fast_outcome
    assert _fingerprint(prof_reference) == _fingerprint(reference)
    assert _fingerprint(prof_fast) == _fingerprint(fast)
    assert prof_fast.result() == fast.result()

    snapshot = registry.snapshot()
    # The scalar reference is pure slow path, and its every
    # instruction lands in the opcode mix.
    assert snapshot.counters[names.PROFILE_SLOW_INSTRUCTIONS] > 0
    assert sum(snapshot.histograms[names.PROFILE_OPCODE].values()) > 0
    if prof_fast._fast_engine is not None:
        assert snapshot.counters[names.PROFILE_BURSTS] > 0
        assert names.PROFILE_BURST_LENGTH in snapshot.histograms
