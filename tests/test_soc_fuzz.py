"""Differential fuzzing of the NTC32 CPU.

Hypothesis generates random straight-line ALU programs; an independent
golden interpreter (written directly against the ISA spec, sharing no
code with :mod:`repro.soc.cpu`) predicts the architectural state, and
both must agree register for register.  This is the test that keeps
the FFT's correctness proofs honest: if the CPU and the golden model
ever disagree, one of them misreads the spec.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.assembler import assemble
from repro.soc.cpu import Cpu
from repro.soc.isa import Opcode
from repro.soc.memory import FaultyMemory

_MASK32 = 0xFFFFFFFF

_R_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
          "mul", "mulh"]
_I_OPS = ["addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti"]


def _signed(value):
    return value - (1 << 32) if value & 0x80000000 else value


def _golden_r(op, b, c):
    """Golden semantics of R-type ops on 32-bit unsigned patterns."""
    if op == "add":
        return (b + c) & _MASK32
    if op == "sub":
        return (b - c) & _MASK32
    if op == "and":
        return b & c
    if op == "or":
        return b | c
    if op == "xor":
        return b ^ c
    if op == "sll":
        return (b << (c & 31)) & _MASK32
    if op == "srl":
        return b >> (c & 31)
    if op == "sra":
        return (_signed(b) >> (c & 31)) & _MASK32
    if op == "slt":
        return int(_signed(b) < _signed(c))
    if op == "mul":
        return (_signed(b) * _signed(c)) & _MASK32
    if op == "mulh":
        return ((_signed(b) * _signed(c)) >> 32) & _MASK32
    raise AssertionError(op)


def _golden_i(op, b, imm):
    if op == "addi":
        return (b + imm) & _MASK32
    # Logical immediates are sign-extended (RISC-V convention), so a
    # negative imm applies as its full 32-bit two's-complement pattern.
    if op == "andi":
        return b & (imm & _MASK32)
    if op == "ori":
        return b | (imm & _MASK32)
    if op == "xori":
        return b ^ (imm & _MASK32)
    if op == "slli":
        return (b << (imm & 31)) & _MASK32
    if op == "srli":
        return b >> (imm & 31)
    if op == "srai":
        return (_signed(b) >> (imm & 31)) & _MASK32
    if op == "slti":
        return int(_signed(b) < imm)
    raise AssertionError(op)


def _golden_run(instructions, seed_regs):
    regs = list(seed_regs)
    for kind, payload in instructions:
        if kind == "r":
            op, a, b, c = payload
            result = _golden_r(op, regs[b], regs[c])
        elif kind == "i":
            op, a, b, imm = payload
            result = _golden_i(op, regs[b], imm)
        else:  # lui
            a, imm = payload
            result = (imm << 12) & _MASK32
        if a != 0:
            regs[a] = result
    return regs


@st.composite
def alu_programs(draw):
    """Random straight-line programs plus seed register values."""
    seed_regs = [0] + [
        draw(st.integers(0, _MASK32)) for _ in range(15)
    ]
    length = draw(st.integers(min_value=1, max_value=25))
    instructions = []
    for _ in range(length):
        kind = draw(st.sampled_from(["r", "i", "lui"]))
        a = draw(st.integers(0, 15))
        if kind == "r":
            op = draw(st.sampled_from(_R_OPS))
            b = draw(st.integers(0, 15))
            c = draw(st.integers(0, 15))
            instructions.append(("r", (op, a, b, c)))
        elif kind == "i":
            op = draw(st.sampled_from(_I_OPS))
            b = draw(st.integers(0, 15))
            imm = draw(st.integers(-(1 << 13), (1 << 13) - 1))
            if op in ("slli", "srli", "srai"):
                imm = draw(st.integers(0, 31))
            instructions.append(("i", (op, a, b, imm)))
        else:
            imm = draw(st.integers(0, (1 << 21) - 1))
            instructions.append(("lui", (a, imm)))
    return instructions, seed_regs


def _to_source(instructions):
    lines = []
    for kind, payload in instructions:
        if kind == "r":
            op, a, b, c = payload
            lines.append(f"{op} r{a}, r{b}, r{c}")
        elif kind == "i":
            op, a, b, imm = payload
            lines.append(f"{op} r{a}, r{b}, {imm}")
        else:
            a, imm = payload
            lines.append(f"lui r{a}, {imm}")
    lines.append("halt")
    return "\n".join(lines)


@given(program=alu_programs())
@settings(max_examples=300, deadline=None)
def test_cpu_matches_golden_model(program):
    instructions, seed_regs = program
    words = assemble(_to_source(instructions))
    memory = FaultyMemory("IM", max(len(words), 1), 32)
    memory.load(words)
    cpu = Cpu(
        fetch=memory.peek,
        load=lambda a: 0,
        store=lambda a, v: None,
    )
    cpu.state.registers = list(seed_regs)
    cpu.run(max_instructions=1000)
    expected = _golden_run(instructions, seed_regs)
    assert cpu.state.registers == expected


@given(program=alu_programs())
@settings(max_examples=100, deadline=None)
def test_r0_never_written(program):
    instructions, seed_regs = program
    seed_regs = [0] + seed_regs[1:]
    words = assemble(_to_source(instructions))
    memory = FaultyMemory("IM", max(len(words), 1), 32)
    memory.load(words)
    cpu = Cpu(fetch=memory.peek, load=lambda a: 0, store=lambda a, v: None)
    cpu.state.registers = list(seed_regs)
    cpu.run(max_instructions=1000)
    assert cpu.state.registers[0] == 0


def test_every_alu_opcode_covered_by_fuzz_tables():
    """The fuzz op tables must cover the full R/I ALU opcode sets."""
    from repro.soc.isa import I_TYPE, R_TYPE

    assert {op.name.lower() for op in R_TYPE} == set(_R_OPS)
    assert {op.name.lower() for op in I_TYPE} == set(_I_OPS)


def test_golden_tables_reject_unknown():
    import pytest

    with pytest.raises(AssertionError):
        _golden_r("nand", 1, 2)
    with pytest.raises(AssertionError):
        _golden_i("subi", 1, 2)


def test_opcode_enum_is_stable():
    """Binary compatibility: programs assembled today must decode the
    same tomorrow; pin the opcode numbering."""
    assert Opcode.ADD == 0x01
    assert Opcode.LW == 0x20
    assert Opcode.BEQ == 0x30
    assert Opcode.HALT == 0x3E
    assert Opcode.YIELD == 0x3F
