"""Tests for the NTC32 ISA encoding and the assembler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.assembler import AssemblerError, assemble
from repro.soc.isa import (
    BIGIMM_TYPE,
    IllegalInstruction,
    Instruction,
    Opcode,
    decode,
    encode,
)


class TestEncodeDecode:
    @given(
        op=st.sampled_from(sorted(Opcode, key=int)),
        a=st.integers(0, 15),
        b=st.integers(0, 15),
        c=st.integers(0, 15),
        imm=st.integers(-(1 << 13), (1 << 13) - 1),
    )
    @settings(max_examples=300, deadline=None)
    def test_round_trip(self, op, a, b, c, imm):
        if op in BIGIMM_TYPE:
            instruction = Instruction(op, a=a, imm=imm)
        else:
            instruction = Instruction(op, a=a, b=b, c=c, imm=imm)
        assert decode(encode(instruction)) == instruction

    def test_big_imm_range(self):
        instruction = Instruction(Opcode.LUI, a=3, imm=(1 << 21) - 1)
        assert decode(encode(instruction)) == instruction
        negative = Instruction(Opcode.JAL, a=0, imm=-(1 << 21))
        assert decode(encode(negative)) == negative

    def test_imm_overflow_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADDI, a=1, b=1, imm=1 << 13)

    def test_register_overflow_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, a=16, b=0, c=0)

    def test_decode_invalid_opcode(self):
        with pytest.raises(IllegalInstruction):
            decode(0x00 << 26)  # opcode 0 is unassigned

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode(1 << 32)

    def test_bitflip_fragility(self):
        """A single bit flip in the opcode field turns a valid word
        into either a different instruction or an illegal one — the IM
        corruption failure mode the paper's platform must survive."""
        word = encode(Instruction(Opcode.ADD, a=1, b=2, c=3))
        outcomes = {"illegal": 0, "different": 0}
        for bit in range(26, 32):
            try:
                other = decode(word ^ (1 << bit))
                if other.opcode != Opcode.ADD:
                    outcomes["different"] += 1
            except IllegalInstruction:
                outcomes["illegal"] += 1
        assert outcomes["illegal"] + outcomes["different"] == 6


class TestAssembler:
    def test_basic_program(self):
        words = assemble("addi r1, r0, 5\nadd r2, r1, r1\nhalt")
        assert len(words) == 3
        first = decode(words[0])
        assert first.opcode is Opcode.ADDI
        assert first.a == 1
        assert first.imm == 5

    def test_comments_and_blank_lines(self):
        words = assemble("; only a comment\n\naddi r1, r0, 1 ; trailing\n")
        assert len(words) == 1

    def test_labels_resolve_forward_and_back(self):
        source = """
        top:
            addi r1, r1, 1
            beq  r1, r2, done
            j    top
        done:
            halt
        """
        words = assemble(source)
        branch = decode(words[1])
        assert branch.imm == 2  # to 'done' at 3, from address 1
        jump = decode(words[2])
        assert jump.opcode is Opcode.JAL
        assert jump.imm == -2  # back to 'top' at 0, from address 2

    def test_li_small_uses_addi(self):
        words = assemble("li r1, 100")
        assert len(words) == 1
        assert decode(words[0]).opcode is Opcode.ADDI

    def test_li_large_expands_to_lui_ori(self):
        words = assemble("li r1, 0x12345678")
        assert len(words) == 2
        assert decode(words[0]).opcode is Opcode.LUI
        assert decode(words[1]).opcode is Opcode.ORI

    def test_li_expansion_keeps_labels_aligned(self):
        source = """
            li r1, 0x12345678
        target:
            halt
            j target
        """
        words = assemble(source)
        jump = decode(words[3])
        assert jump.imm == -1  # target at 2, jump at 3

    def test_pseudo_nop_and_mv(self):
        words = assemble("nop\nmv r3, r4")
        assert decode(words[0]).opcode is Opcode.ADD
        mv = decode(words[1])
        assert (mv.a, mv.b, mv.c) == (3, 4, 0)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_register(self):
        with pytest.raises(AssemblerError, match="register"):
            assemble("add r1, r2, r99")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="takes"):
            assemble("add r1, r2")

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError, match="duplicate"):
            assemble("x:\nnop\nx:\nnop")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("nop\nnop\nbogus r1\n")

    def test_case_insensitive_mnemonics(self):
        assert assemble("ADDI r1, r0, 1") == assemble("addi r1, r0, 1")
