"""Tests for platform memories, fault engine, ports and energy model."""

import numpy as np
import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.ecc.hamming import SecdedCodec
from repro.soc.energy_model import (
    MemoryComponentSpec,
    PlatformEnergyModel,
)
from repro.soc.faults import VoltageFaultModel
from repro.soc.memory import FaultyMemory, MemoryAccessFault
from repro.soc.ports import CodecPort, DetectOnlyCodec, RawPort
from repro.ecc.wrapper import UncorrectableError


class TestVoltageFaultModel:
    def test_no_faults_above_onset(self):
        model = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 32, vdd=0.6)
        assert all(model.sample_mask() == 0 for _ in range(1000))

    def test_fault_rate_tracks_model(self):
        engine = VoltageFaultModel(
            ACCESS_CELL_BASED_40NM, 39, vdd=0.34,
            rng=np.random.default_rng(0),
        )
        p_bit = ACCESS_CELL_BASED_40NM.bit_error_probability(0.34)
        trials = 100_000
        bits = sum(bin(engine.sample_mask()).count("1") for _ in range(trials))
        assert bits / (trials * 39) == pytest.approx(p_bit, rel=0.2)

    def test_set_vdd_changes_rate(self):
        engine = VoltageFaultModel(
            ACCESS_CELL_BASED_40NM, 32, vdd=0.30,
            rng=np.random.default_rng(1),
        )
        p_low = engine.p_bit
        engine.set_vdd(0.50)
        assert engine.p_bit < p_low

    def test_forced_faults_fire_in_order(self):
        engine = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 32, vdd=1.0)
        engine.force_next(0b1)
        engine.force_next(0b110)
        assert engine.sample_mask() == 0b1
        assert engine.sample_mask() == 0b110
        assert engine.sample_mask() == 0
        assert engine.injected_events == 2
        assert engine.injected_bits == 3

    def test_forced_mask_width_check(self):
        engine = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 8, vdd=1.0)
        with pytest.raises(ValueError):
            engine.force_next(1 << 8)


class TestFaultyMemory:
    def test_ideal_round_trip(self):
        memory = FaultyMemory("SP", 16, 32)
        memory.write(3, 0xCAFED00D)
        assert memory.read(3) == 0xCAFED00D

    def test_bounds(self):
        memory = FaultyMemory("SP", 16, 32)
        with pytest.raises(MemoryAccessFault):
            memory.read(16)
        with pytest.raises(MemoryAccessFault):
            memory.write(-1, 0)

    def test_width_enforced(self):
        memory = FaultyMemory("SP", 16, 32)
        with pytest.raises(ValueError):
            memory.write(0, 1 << 32)

    def test_forced_read_fault_is_destructive(self):
        engine = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 32, vdd=1.0)
        memory = FaultyMemory("SP", 16, 32, faults=engine)
        memory.write(0, 0)
        engine.force_next(0b100)
        assert memory.read(0) == 0b100
        # The upset is stored, not transient.
        assert memory.peek(0) == 0b100

    def test_write_fault_corrupts_stored_value(self):
        engine = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 32, vdd=1.0)
        memory = FaultyMemory("SP", 16, 32, faults=engine)
        engine.force_next(0b1)
        memory.write(0, 0b1000)
        assert memory.peek(0) == 0b1001

    def test_snapshot_restore(self):
        memory = FaultyMemory("SP", 8, 32)
        memory.write(2, 5)
        snap = memory.snapshot()
        memory.write(2, 9)
        memory.restore(snap)
        assert memory.peek(2) == 5

    def test_fault_engine_width_must_match(self):
        engine = VoltageFaultModel(ACCESS_CELL_BASED_40NM, 39, vdd=1.0)
        with pytest.raises(ValueError, match="width"):
            FaultyMemory("SP", 16, 32, faults=engine)

    def test_load_bounds(self):
        memory = FaultyMemory("SP", 4, 32)
        with pytest.raises(MemoryAccessFault):
            memory.load([1, 2, 3], base=2)


class TestPorts:
    def test_raw_port_requires_32_bits(self):
        with pytest.raises(ValueError):
            RawPort(FaultyMemory("SP", 8, 39))

    def test_codec_port_round_trip_and_load(self):
        memory = FaultyMemory("SP", 8, 39)
        port = CodecPort(memory, SecdedCodec())
        port.load([1, 2, 3])
        assert [port.peek(i) for i in range(3)] == [1, 2, 3]
        port.write(4, 0xFEED)
        assert port.read(4) == 0xFEED

    def test_codec_port_corrects_and_scrubs(self):
        memory = FaultyMemory("SP", 8, 39)
        port = CodecPort(memory, SecdedCodec(), auto_scrub=True)
        port.write(0, 77)
        memory.poke(0, memory.peek(0) ^ (1 << 20))
        assert port.read(0) == 77
        # Scrub rewrote the clean codeword.
        assert memory.peek(0) == SecdedCodec().encode(77)

    def test_codec_port_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            CodecPort(FaultyMemory("SP", 8, 32), SecdedCodec())

    def test_detect_only_codec_never_corrects(self):
        codec = DetectOnlyCodec(SecdedCodec())
        codeword = codec.encode(123) ^ 1  # single flip
        from repro.ecc.base import DecodeStatus

        result = codec.decode(codeword)
        assert result.status is DecodeStatus.DETECTED

    def test_detect_only_port_raises(self):
        memory = FaultyMemory("SP", 8, 39)
        port = CodecPort(memory, DetectOnlyCodec(SecdedCodec()))
        port.write(0, 5)
        memory.poke(0, memory.peek(0) ^ 1)
        with pytest.raises(UncorrectableError):
            port.read(0)


class TestPlatformEnergyModel:
    def _model(self, specs=None):
        specs = specs or [
            MemoryComponentSpec(name="IM", words=1024, stored_bits=32),
            MemoryComponentSpec(name="SP", words=2048, stored_bits=32),
        ]
        return PlatformEnergyModel(specs)

    def test_report_components(self):
        model = self._model()
        report = model.report(
            vdd=0.55, frequency=290e3, cycles=100_000,
            access_counts={"IM": (100_000, 0), "SP": (30_000, 15_000)},
        )
        names = [c.name for c in report.components]
        assert names == ["core", "IM", "SP"]
        assert report.total_w > 0.0
        assert report.component("SP").dynamic_w > 0.0

    def test_power_scales_down_with_voltage(self):
        model = self._model()
        counts = {"IM": (100_000, 0), "SP": (30_000, 15_000)}
        high = model.report(0.55, 290e3, 100_000, counts)
        low = model.report(0.33, 290e3, 100_000, counts)
        assert low.total_w < 0.5 * high.total_w

    def test_wider_words_cost_more(self):
        raw = self._model()
        ecc = self._model([
            MemoryComponentSpec(
                name="IM", words=1024, stored_bits=39,
                codec_energy_factor=1.15,
            ),
            MemoryComponentSpec(
                name="SP", words=2048, stored_bits=39,
                codec_energy_factor=1.15,
            ),
        ])
        counts = {"IM": (100_000, 0), "SP": (30_000, 15_000)}
        assert (
            ecc.report(0.44, 290e3, 100_000, counts).component("SP").total_w
            > raw.report(0.44, 290e3, 100_000, counts).component("SP").total_w
        )

    def test_dict_export(self):
        report = self._model().report(
            0.55, 290e3, 1000, {"IM": (0, 0), "SP": (0, 0)}
        )
        flat = report.as_dict()
        assert set(flat) == {"core", "IM", "SP", "total"}

    def test_rejects_bad_inputs(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.report(0.55, 0.0, 1000, {})
        with pytest.raises(ValueError):
            model.report(0.55, 290e3, 0, {})

    def test_unknown_component_lookup(self):
        report = self._model().report(
            0.55, 290e3, 1000, {"IM": (0, 0), "SP": (0, 0)}
        )
        with pytest.raises(KeyError):
            report.component("PM")
