"""Tests for the assembled platform (scheme-independent behaviour)."""

import pytest

from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.ecc.hamming import SecdedCodec
from repro.soc.assembler import assemble
from repro.soc.cpu import StopReason
from repro.soc.faults import VoltageFaultModel
from repro.soc.memory import FaultyMemory
from repro.soc.platform import (
    DetectedError,
    Platform,
    PlatformConfig,
    SystemFailure,
)
from repro.soc.ports import CodecPort, RawPort


def raw_platform(im_words=256, sp_words=256):
    im = FaultyMemory("IM", im_words, 32)
    sp = FaultyMemory("SP", sp_words, 32)
    return Platform(im, RawPort(im), sp, RawPort(sp))


def secded_platform(vdd=1.0, seed=0):
    import numpy as np

    codec = SecdedCodec()
    im = FaultyMemory(
        "IM", 256, codec.code_bits,
        faults=VoltageFaultModel(
            ACCESS_CELL_BASED_40NM, codec.code_bits, vdd,
            rng=np.random.default_rng(seed),
        ),
    )
    sp = FaultyMemory(
        "SP", 256, codec.code_bits,
        faults=VoltageFaultModel(
            ACCESS_CELL_BASED_40NM, codec.code_bits, vdd,
            rng=np.random.default_rng(seed + 1),
        ),
    )
    return Platform(
        im, CodecPort(im, codec, auto_scrub=True),
        sp, CodecPort(sp, codec, auto_scrub=True),
    )


class TestConfig:
    def test_paper_defaults(self):
        config = PlatformConfig()
        assert config.im_words == 1024   # 4 KB
        assert config.sp_words == 2048   # 8 KB

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            PlatformConfig(im_words=0)


class TestLoadingAndInspection:
    def test_program_and_data_loading_counts_nothing(self):
        platform = raw_platform()
        platform.load_program(assemble("halt"))
        platform.load_data([1, 2, 3], base=10)
        assert platform.im.counters.total == 0
        assert platform.sp.counters.total == 0
        assert platform.read_data(10, 3) == [1, 2, 3]

    def test_read_data_decodes_through_codec(self):
        platform = secded_platform()
        platform.load_data([7, 8, 9])
        assert platform.read_data(0, 3) == [7, 8, 9]
        # backing store holds codewords, not raw values
        assert platform.sp.peek(0) == SecdedCodec().encode(7)


class TestFailureTranslation:
    def test_illegal_instruction_becomes_system_failure(self):
        platform = raw_platform()
        platform.load_program([0])  # opcode 0 is unassigned
        with pytest.raises(SystemFailure) as excinfo:
            platform.run_until_stop()
        assert excinfo.value.kind == "illegal-instruction"

    def test_wild_store_becomes_system_failure(self):
        platform = raw_platform()
        platform.load_program(
            assemble("li r1, 5000\nsw r0, r1, 0\nhalt")
        )
        with pytest.raises(SystemFailure) as excinfo:
            platform.run_until_stop()
        assert excinfo.value.kind == "wild-access"

    def test_uncorrectable_sp_read_is_detected_error(self):
        platform = secded_platform()
        platform.load_program(assemble("lw r1, r0, 0\nhalt"))
        platform.load_data([42])
        platform.sp.poke(0, platform.sp.peek(0) ^ 0b11)
        with pytest.raises(DetectedError) as excinfo:
            platform.run_until_stop()
        assert excinfo.value.module == "SP"

    def test_uncorrectable_fetch_is_detected_error_in_im(self):
        platform = secded_platform()
        platform.load_program(assemble("nop\nhalt"))
        platform.im.poke(0, platform.im.peek(0) ^ 0b101)
        with pytest.raises(DetectedError) as excinfo:
            platform.run_until_stop()
        assert excinfo.value.module == "IM"

    def test_single_im_flip_is_transparent(self):
        platform = secded_platform()
        platform.load_program(assemble("li r1, 9\nsw r1, r0, 0\nhalt"))
        platform.im.poke(0, platform.im.peek(0) ^ (1 << 20))
        assert platform.run_until_stop() is StopReason.HALT
        assert platform.read_data(0, 1) == [9]


class TestCpuSnapshot:
    def test_snapshot_restore_rewinds_architecture_not_counters(self):
        platform = raw_platform()
        platform.load_program(
            assemble("li r1, 1\nyield\naddi r1, r1, 1\nsw r1, r0, 0\nhalt")
        )
        assert platform.run_until_stop() is StopReason.YIELD
        snapshot = platform.snapshot_cpu()
        cycles_at_snapshot = platform.cpu.state.cycles
        assert platform.run_until_stop() is StopReason.HALT
        platform.restore_cpu(snapshot)
        # Architectural state rewound...
        assert platform.cpu.state.pc == snapshot.pc
        assert platform.cpu.state.registers[1] == 1
        # ...but the work done still cost cycles.
        assert platform.cpu.state.cycles > cycles_at_snapshot
        # Re-execution completes identically.
        assert platform.run_until_stop() is StopReason.HALT
        assert platform.read_data(0, 1) == [2]

    def test_snapshot_is_deep(self):
        platform = raw_platform()
        platform.load_program(assemble("li r1, 5\nhalt"))
        snapshot = platform.snapshot_cpu()
        platform.run_until_stop()
        assert snapshot.registers[1] == 0  # unaffected by later run


class TestResultCollection:
    def test_result_without_pm(self):
        platform = raw_platform()
        platform.load_program(assemble("lw r1, r0, 0\nsw r1, r0, 1\nhalt"))
        platform.run_until_stop()
        result = platform.result()
        assert result.access_counts["SP"] == (1, 1)
        assert "PM" not in result.access_counts
        assert result.total_cycles == result.cycles

    def test_result_includes_pm_when_present(self):
        import numpy as np

        from repro.ecc.bch import BchCodec

        codec = BchCodec(data_bits=32, t=4)
        im = FaultyMemory("IM", 64, 32)
        sp = FaultyMemory("SP", 64, 32)
        pm = FaultyMemory(
            "PM", 64, codec.code_bits,
            faults=VoltageFaultModel(
                ACCESS_CELL_BASED_40NM, codec.code_bits, 1.0,
                rng=np.random.default_rng(0),
            ),
        )
        platform = Platform(
            im, RawPort(im), sp, RawPort(sp),
            pm=pm, pm_port=CodecPort(pm, codec),
        )
        platform.load_program(assemble("halt"))
        platform.pm_port.write(0, 123)
        platform.run_until_stop()
        result = platform.result(rollbacks=2, overhead_cycles=50)
        assert result.access_counts["PM"] == (0, 1)
        assert result.rollbacks == 2
        assert result.total_cycles == result.cycles + 50
