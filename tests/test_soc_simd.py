"""Differential fuzzing of the lockstep SIMD lane block.

The bit-exactness contract of :mod:`repro.soc.simd` is the strongest
claim in the codebase: every lane of an N-lane lockstep run must be
bit-identical — registers, memory images, fault statistics, counters
and RNG stream positions — to an independent scalar run of the same
platform.  The scalar engine is the oracle; these tests hold the
vector engine to it three ways:

* an N-lane campaign oracle check on the real FFT workload for both
  SECDED and OCEAN at sub-Vmin supplies (full ``RunOutcome`` equality
  plus RNG stream positions);
* Hypothesis differential fuzzing of random programs (ALU, memory
  traffic, branches, yields) across lane blocks with per-lane fault
  seeds, reusing the scalar fuzzer's golden machinery;
* deterministic divergence edge cases — every lane faulted at the
  same access, a single lane halting early, N=1 blocks, and campaign
  lane counts that do not divide the seed grid.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.campaign import run_campaign
from repro.core.access import ACCESS_CELL_BASED_40NM
from repro.mitigation import OceanRunner, SecdedRunner
from repro.obs import scoped_metrics
from repro.soc.assembler import assemble
from repro.soc.cpu import StopReason
from repro.soc.platform import DetectedError, SystemFailure
from repro.soc.simd import LaneBlock, lane_capable, run_lane_block
from repro.workloads.fft import build_fft_program

from tests.test_soc_fuzz import (
    _build_soc,
    _fingerprint,
    _run_soc,
    soc_programs,
)

_FREQUENCY = 290e3


def _rng_states(runner):
    """Per-memory fault RNG positions of the runner's last platform."""
    platform = runner.last_platform
    memories = [platform.im, platform.sp]
    if platform.pm is not None:
        memories.append(platform.pm)
    return [
        memory.faults.rng.bit_generator.state if memory.faults else None
        for memory in memories
    ]


def _fft_fixture(points):
    program = build_fft_program(points)
    golden = program.expected_output(list(program.data_words[:points]))
    return program.workload, golden


# ---------------------------------------------------------------------------
# N-lane oracle: lockstep vs. N independent scalar runs, real workload
# ---------------------------------------------------------------------------
class TestLockstepOracle:
    """run_lane_block == N scalar runner.run calls, outcome for outcome."""

    def _check(self, runner_cls, vdd, lanes=6, seed_base=40, **kwargs):
        workload, _ = _fft_fixture(16)
        model = ACCESS_CELL_BASED_40NM
        oracle = []
        for seed in range(seed_base, seed_base + lanes):
            runner = runner_cls(model, seed=seed, **kwargs)
            outcome = runner.run(workload, vdd, _FREQUENCY)
            oracle.append((outcome, _rng_states(runner)))
        runners = [
            runner_cls(model, seed=seed, **kwargs)
            for seed in range(seed_base, seed_base + lanes)
        ]
        outcomes = run_lane_block(runners, workload, vdd, _FREQUENCY)
        assert len(outcomes) == lanes
        for lane in range(lanes):
            assert outcomes[lane] == oracle[lane][0]
            assert _rng_states(runners[lane]) == oracle[lane][1]

    def test_secded_sub_vmin(self):
        self._check(SecdedRunner, vdd=0.38)

    def test_ocean_sub_vmin(self):
        self._check(OceanRunner, vdd=0.32)

    def test_single_lane_block_matches_scalar(self):
        """N=1: the degenerate block is still bit-exact, not special."""
        self._check(SecdedRunner, vdd=0.40, lanes=1)

    def test_lane_platforms_are_lane_capable(self):
        runner = SecdedRunner(ACCESS_CELL_BASED_40NM, seed=1)
        assert lane_capable(runner.build_platform(0.5))


# ---------------------------------------------------------------------------
# Hypothesis: random programs, per-lane fault seeds, full fingerprints
# ---------------------------------------------------------------------------
def _run_lockstep(platforms, block, source, seed_regs, data,
                  max_instructions=300):
    """Breadth-first lockstep mirror of the scalar ``_run_soc`` loop."""
    words = assemble(source)
    n = len(platforms)
    for platform in platforms:
        platform.load_program(words)
        platform.load_data(data)
        platform.cpu.state.registers = list(seed_regs)
    outcomes = [[] for _ in range(n)]
    done = [False] * n
    for _ in range(6):  # bounded number of YIELD resumptions
        pending = [lane for lane in range(n) if not done[lane]]
        if not pending:
            break
        block.demand(pending, max_instructions)
        for lane in pending:
            try:
                reason = platforms[lane].run_until_stop(max_instructions)
            except SystemFailure as exc:
                outcomes[lane].append(
                    ("SystemFailure", exc.kind, str(exc))
                )
                done[lane] = True
            except DetectedError as exc:
                outcomes[lane].append(
                    ("DetectedError", exc.module, exc.address)
                )
                done[lane] = True
            else:
                outcomes[lane].append(reason.name)
                if reason is StopReason.HALT:
                    done[lane] = True
    return outcomes


@st.composite
def lane_scenarios(draw):
    program = draw(soc_programs())
    vdd = draw(st.sampled_from([0.55, 0.45, 0.40, 0.35, 0.30]))
    scheme = draw(st.sampled_from(["raw", "secded", "detect"]))
    lanes = draw(st.integers(min_value=2, max_value=5))
    seeds = [draw(st.integers(0, 1 << 16)) for _ in range(lanes)]
    return program, vdd, scheme, seeds


@given(scenario=lane_scenarios())
@settings(max_examples=60, deadline=None)
def test_lane_block_is_bit_exact(scenario):
    (source, seed_regs, data), vdd, scheme, seeds = scenario
    references = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    ref_outcomes = [
        _run_soc(platform, source, seed_regs, data)
        for platform in references
    ]
    platforms = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    block = LaneBlock(platforms, program_words=assemble(source))
    outcomes = _run_lockstep(platforms, block, source, seed_regs, data)
    assert outcomes == ref_outcomes
    for platform, reference in zip(platforms, references):
        assert _fingerprint(platform) == _fingerprint(reference)
        assert platform.result() == reference.result()


# ---------------------------------------------------------------------------
# Deterministic divergence edge cases
# ---------------------------------------------------------------------------
_LOAD_LOOP = """
    addi r2, r0, 8
loop:
    lw r3, r1, 0
    add r4, r4, r3
    addi r1, r1, 1
    addi r2, r2, -1
    bne r2, r0, loop
    halt
"""

#: Branch on r1: lanes seeded with r1 == 0 halt after two instructions,
#: the rest grind through a long ALU tail first.
_EARLY_EXIT = """
    beq r1, r0, done
    addi r2, r0, 200
spin:
    add r3, r3, r2
    xor r4, r4, r3
    addi r2, r2, -1
    bne r2, r0, spin
done:
    halt
"""


def _edge_case(scheme, vdd, seeds, source, seed_regs, data,
               prepare=None):
    """Run scalar references and a lane block; both fingerprints match."""
    references = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    platforms = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    if prepare is not None:
        for platform in references:
            prepare(platform)
        for platform in platforms:
            prepare(platform)
    ref_outcomes = [
        _run_soc(platform, source, seed_regs, data)
        for platform in references
    ]
    block = LaneBlock(platforms, program_words=assemble(source))
    outcomes = _run_lockstep(platforms, block, source, seed_regs, data)
    assert outcomes == ref_outcomes
    for platform, reference in zip(platforms, references):
        assert _fingerprint(platform) == _fingerprint(reference)


def test_all_lanes_faulted_at_same_access():
    """Every lane hits a forced scratchpad fault on the same load."""
    seed_regs = [0] * 16
    data = list(range(100, 108))

    def prepare(platform):
        # Third SP access of the run faults in every lane — the whole
        # group leaves the vector path at once and must re-fuse after.
        platform.sp.faults.force_next(0)
        platform.sp.faults.force_next(0)
        platform.sp.faults.force_next(0b101)

    _edge_case(
        "secded", 0.55, [11, 12, 13, 14], _LOAD_LOOP,
        seed_regs, data, prepare=prepare,
    )


def test_single_lane_forced_fault_diverges_and_refuses():
    """One lane faults mid-loop; the others stay on the vector path."""
    seed_regs = [0] * 16
    data = list(range(7, 15))

    def prepare_one(platform):
        platform.sp.faults.force_next(0b11)

    references = [
        _build_soc("secded", 0.55, seed, fast_lane=False)
        for seed in (21, 22, 23)
    ]
    platforms = [
        _build_soc("secded", 0.55, seed, fast_lane=False)
        for seed in (21, 22, 23)
    ]
    prepare_one(references[1])
    prepare_one(platforms[1])
    ref_outcomes = [
        _run_soc(platform, _LOAD_LOOP, seed_regs, data)
        for platform in references
    ]
    block = LaneBlock(platforms, program_words=assemble(_LOAD_LOOP))
    outcomes = _run_lockstep(
        platforms, block, _LOAD_LOOP, seed_regs, data
    )
    assert outcomes == ref_outcomes
    for platform, reference in zip(platforms, references):
        assert _fingerprint(platform) == _fingerprint(reference)


def test_single_lane_early_halt():
    """A lane that exits early must stop at its own HALT event while
    the surviving lanes keep executing the long tail."""
    seed_regs = [0] * 16
    seed_regs[1] = 0  # every lane shares the register file seed...
    data = [0] * 8
    # ...so drive the divergence through per-lane data instead: r1 is
    # loaded from the scratchpad, which differs per lane via load_data.
    source = """
        lw r1, r0, 0
        beq r1, r0, 5
        addi r2, r0, 150
        add r3, r3, r2
        addi r2, r2, -1
        bne r2, r0, -2
        halt
    """
    for lane_data in ([0, 1, 1, 1], [1, 0, 1, 1]):
        references = []
        platforms = []
        for seed, first_word in zip((31, 32, 33, 34), lane_data):
            ref = _build_soc("secded", 0.55, seed, fast_lane=False)
            plat = _build_soc("secded", 0.55, seed, fast_lane=False)
            references.append((ref, first_word))
            platforms.append((plat, first_word))
        words = assemble(source)
        ref_outcomes = []
        for ref, first_word in references:
            ref_outcomes.append(
                _run_soc(ref, source, seed_regs, [first_word] + data)
            )
        block = LaneBlock(
            [plat for plat, _ in platforms], program_words=words
        )
        outcomes = [[] for _ in platforms]
        for lane, (plat, first_word) in enumerate(platforms):
            plat.load_program(words)
            plat.load_data([first_word] + data)
            plat.cpu.state.registers = list(seed_regs)
        block.demand(range(len(platforms)), 300)
        for lane, (plat, _) in enumerate(platforms):
            try:
                reason = plat.run_until_stop(300)
                outcomes[lane].append(reason.name)
            except SystemFailure as exc:
                outcomes[lane].append(
                    ("SystemFailure", exc.kind, str(exc))
                )
        assert outcomes == ref_outcomes
        for (plat, _), (ref, _) in zip(platforms, references):
            assert _fingerprint(plat) == _fingerprint(ref)


def test_n1_block_on_random_program():
    """N=1 lockstep equals scalar on a branchy, memory-heavy program."""
    seed_regs = [0, 3] + [0] * 14
    data = [9, 8, 7, 6, 5, 4, 3, 2]
    _edge_case("secded", 0.40, [77], _LOAD_LOOP, seed_regs, data)
    _edge_case("raw", 0.35, [78], _EARLY_EXIT, seed_regs, data)


# ---------------------------------------------------------------------------
# Campaign integration: lanes= sharding is invisible in the results
# ---------------------------------------------------------------------------
class TestCampaignLanes:
    def _kwargs(self, runs):
        workload, golden = _fft_fixture(16)
        return dict(
            workload=workload,
            golden=golden,
            access_model=ACCESS_CELL_BASED_40NM,
            vdd=0.38,
            runs=runs,
            seed_base=500,
        )

    def test_lanes_not_dividing_runs_matches_scalar(self):
        """runs=5, lanes=2 → blocks of 2+2+1; classification, counts
        and failure kinds identical to the scalar campaign."""
        kwargs = self._kwargs(runs=5)
        scalar = run_campaign(SecdedRunner, **kwargs)
        laned = run_campaign(SecdedRunner, lanes=2, **kwargs)
        assert laned.correct == scalar.correct
        assert laned.silent_corruption == scalar.silent_corruption
        assert laned.detected_failure == scalar.detected_failure
        assert laned.total_injected_bits == scalar.total_injected_bits
        assert laned.total_corrected == scalar.total_corrected
        assert laned.total_rollbacks == scalar.total_rollbacks
        assert laned.failures_by_kind == scalar.failures_by_kind

    def test_lanes_wider_than_runs(self):
        """lanes > runs degenerates to one short block."""
        kwargs = self._kwargs(runs=3)
        scalar = run_campaign(SecdedRunner, **kwargs)
        laned = run_campaign(SecdedRunner, lanes=8, **kwargs)
        assert laned.correct == scalar.correct
        assert laned.failures_by_kind == scalar.failures_by_kind
        assert laned.total_injected_bits == scalar.total_injected_bits

    def test_metrics_parity_modulo_engine_counters(self):
        """A lane block publishes the same instrumented-layer counters
        as N scalar runs; only the engine's own ``simd.*`` telemetry
        is new."""
        workload, _ = _fft_fixture(16)
        model = ACCESS_CELL_BASED_40NM
        seeds = list(range(70, 73))
        scalar_counters: dict = {}
        for seed in seeds:
            with scoped_metrics() as registry:
                SecdedRunner(model, seed=seed).run(
                    workload, 0.38, _FREQUENCY
                )
            for name, value in registry.snapshot().as_dict()[
                "counters"
            ].items():
                scalar_counters[name] = (
                    scalar_counters.get(name, 0) + value
                )
        with scoped_metrics() as registry:
            run_lane_block(
                [SecdedRunner(model, seed=seed) for seed in seeds],
                workload, 0.38, _FREQUENCY,
            )
        block_counters = {
            name: value
            for name, value in registry.snapshot()
            .as_dict()["counters"]
            .items()
            if not name.startswith("simd.")
        }
        assert block_counters == scalar_counters


def test_block_rejects_mismatched_lanes():
    import pytest

    secded = _build_soc("secded", 0.5, 1, fast_lane=False)
    raw = _build_soc("raw", 0.5, 2, fast_lane=False)
    with pytest.raises(ValueError):
        LaneBlock([secded, raw])
    with pytest.raises(ValueError):
        LaneBlock([])


def test_rng_positions_equal_np_advancement():
    """The strongest stream claim, spelled out: after a lockstep run
    each lane's generators sit exactly where N scalar runs left them
    (already asserted via fingerprints above; this pins the numpy
    state dict shape the assertion relies on)."""
    platform = _build_soc("secded", 0.45, 5, fast_lane=False)
    state = platform.sp.faults.rng.bit_generator.state
    assert isinstance(state, dict) and "state" in state


@given(scenario=lane_scenarios())
@settings(max_examples=25, deadline=None)
def test_lane_block_bit_exact_with_profiling(scenario):
    """Profiling on must be bit-exactness-neutral on the SIMD engine.

    Lane outcomes, fingerprints and results must match an unprofiled
    lockstep run exactly, while SIMD lane telemetry (service rounds,
    occupancy/divergence histograms) actually populates.
    """
    from repro.obs import MetricsRegistry, names
    from repro.obs import scoped_metrics as _scoped_metrics
    from repro.obs.profile import scoped_profiling

    (source, seed_regs, data), vdd, scheme, seeds = scenario
    references = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    block = LaneBlock(references, program_words=assemble(source))
    ref_outcomes = _run_lockstep(
        references, block, source, seed_regs, data
    )

    platforms = [
        _build_soc(scheme, vdd, seed, fast_lane=False) for seed in seeds
    ]
    registry = MetricsRegistry()
    with _scoped_metrics(registry), scoped_profiling():
        prof_block = LaneBlock(platforms, program_words=assemble(source))
        outcomes = _run_lockstep(
            platforms, prof_block, source, seed_regs, data
        )

    assert outcomes == ref_outcomes
    for platform, reference in zip(platforms, references):
        assert _fingerprint(platform) == _fingerprint(reference)
        assert platform.result() == reference.result()

    snapshot = registry.snapshot()
    assert snapshot.counters[names.PROFILE_SIMD_ROUNDS] > 0
    occupancy = snapshot.histograms[names.PROFILE_LANE_OCCUPANCY]
    assert sum(occupancy.values()) > 0
    assert names.PROFILE_MASK_DENSITY in snapshot.histograms
    assert names.PROFILE_RECONVERGENCE_DEPTH in snapshot.histograms
