"""Content-addressed result store: keys, recovery, dedup, assembly.

The store's contract has three load-bearing promises, each tested
here:

* **Provenance-only keys** — a fingerprint depends on what a campaign
  point *is* (codec, fault model, voltage, seeds, lanes), never on how
  it happens to be executed (process count, retry budget, journaling).
* **Append-safe persistence** — torn sidecar tails, a corrupted SQLite
  file, a concurrent writer, or a payload that no longer matches its
  fingerprint must degrade to recovery or a miss, never to a wrong
  answer.
* **Exact reassembly** — a grid or curve assembled from any mix of
  cached and fresh points is bit-identical to a cold run.
"""

import json
import math
import sqlite3
import threading
import time

import numpy as np
import pytest

from repro.analysis.batch import BatchCampaign
from repro.analysis.campaign import run_campaign
from repro.core.access import (
    ACCESS_CELL_BASED_40NM,
    ACCESS_CELL_BASED_40NM_TYPICAL,
    ACCESS_COMMERCIAL_40NM,
)
from repro.core.errors import InvalidVoltageError
from repro.core.retention import RETENTION_COMMERCIAL_40NM
from repro.mitigation import SecdedRunner
from repro.store import (
    PointKey,
    ResultStore,
    decode_campaign_result,
    encode_campaign_result,
    fig5_point_key,
    fingerprint_provenance,
    scheme_campaign_key,
    scheme_failure_grid,
)
from repro.workloads.fft import build_fft_program

VOLTS = np.linspace(0.30, 0.50, 5)
ACCESSES = 2_000


def _fig5_keys(campaign, voltages=VOLTS, accesses=ACCESSES):
    return [
        fig5_point_key(
            ACCESS_CELL_BASED_40NM, float(vdd), accesses, 32,
            campaign.seed, i,
        )
        for i, vdd in enumerate(voltages)
    ]


class TestKeys:
    def test_fingerprint_is_stable_and_order_independent(self):
        a = PointKey.from_provenance("demo", {"x": 1, "y": 2.0})
        b = PointKey.from_provenance("demo", {"y": 2.0, "x": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_separates_provenance(self):
        base = dict(
            scheme="SECDED", workload="w", golden="g",
            access_model=ACCESS_CELL_BASED_40NM, vdd=0.44,
            frequency=290e3, runs=4, seed_base=100, lanes=1,
            runner_kwargs={},
        )

        def fp(**overrides):
            kwargs = {**base, **overrides}
            workload = build_fft_program(16)
            return scheme_campaign_key(
                kwargs["scheme"], workload, [1, 2, 3],
                kwargs["access_model"], kwargs["vdd"],
                kwargs["frequency"], kwargs["runs"],
                kwargs["seed_base"], kwargs["lanes"],
                kwargs["runner_kwargs"],
            ).fingerprint()

        assert fp() == fp()
        assert fp(vdd=0.45) != fp()
        assert fp(seed_base=101) != fp()
        # Lane count changes quarantine granularity, so it is
        # provenance, not an execution knob.
        assert fp(lanes=4) != fp()

    def test_key_rejects_invalid_vdd(self):
        with pytest.raises(InvalidVoltageError):
            fig5_point_key(
                ACCESS_CELL_BASED_40NM, float("nan"), 100, 32, 5, 0
            )

    def test_provenance_roundtrips_through_fingerprint(self):
        key = fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0)
        assert fingerprint_provenance(key.provenance()) == key.fingerprint()


class TestResultStoreBasics:
    def test_put_get_roundtrip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        key = fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0)
        assert store.get(key) is None
        store.put(key, {"errors": 7})
        assert store.get(key) == {"errors": 7}
        stats = store.stats()
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["rows"] == 1

    def test_get_survives_cold_lru(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ResultStore(path).put(
            fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0),
            {"errors": 7},
        )
        reopened = ResultStore(path)
        key = fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0)
        assert reopened.get(key) == {"errors": 7}
        assert reopened.stats()["front_hits"] == 0

    def test_lru_eviction_bounded(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite", lru_capacity=2)
        keys = _fig5_keys(BatchCampaign(seed=5))[:3]
        for i, key in enumerate(keys):
            store.put(key, {"errors": i})
        stats = store.stats()
        assert stats["front_cache_entries"] == 2
        assert stats["evictions"] == 1
        # The evicted entry is still served (from SQLite).
        assert store.get(keys[0]) == {"errors": 0}

    def test_export_import_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        keys = _fig5_keys(BatchCampaign(seed=5))
        for i, key in enumerate(keys):
            store.put(key, {"errors": i})
        exported = store.export_ndjson(tmp_path / "dump.ndjson")
        assert exported == len(keys)
        other = ResultStore(tmp_path / "b.sqlite")
        assert other.import_ndjson(tmp_path / "dump.ndjson") == len(keys)
        assert other.entries() == store.entries()
        for i, key in enumerate(keys):
            assert other.get(key) == {"errors": i}

    def test_import_skips_tampered_rows(self, tmp_path):
        store = ResultStore(tmp_path / "a.sqlite")
        keys = _fig5_keys(BatchCampaign(seed=5))[:2]
        for i, key in enumerate(keys):
            store.put(key, {"errors": i})
        dump = tmp_path / "dump.ndjson"
        store.export_ndjson(dump)
        lines = dump.read_text().splitlines()
        record = json.loads(lines[0])
        record["provenance"]["vdd"] = 0.999  # no longer matches
        dump.write_text("\n".join([json.dumps(record)] + lines[1:]) + "\n")
        fresh = ResultStore(tmp_path / "b.sqlite")
        assert fresh.import_ndjson(dump) == 1
        assert fresh.stats()["corrupt_entries"] == 1

    def test_gc_keeps_newest(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        keys = _fig5_keys(BatchCampaign(seed=5))
        for i, key in enumerate(keys):
            store.put(key, {"errors": i})
        removed = store.gc(keep=2)
        assert removed == len(keys) - 2
        assert len(store) == 2
        assert store.get(keys[-1]) == {"errors": len(keys) - 1}
        assert store.get(keys[0]) is None
        # The sidecar is rewritten to match, so recovery stays exact.
        reopened = ResultStore(tmp_path / "s2.sqlite")
        reopened.import_ndjson(store.sidecar_path)
        assert len(reopened) == 2


class TestRecovery:
    def _seeded(self, tmp_path, n=4):
        store = ResultStore(tmp_path / "s.sqlite")
        keys = _fig5_keys(BatchCampaign(seed=5))[:n]
        for i, key in enumerate(keys):
            store.put(key, {"errors": i})
        return store, keys

    def test_rebuild_from_sidecar_after_db_loss(self, tmp_path):
        store, keys = self._seeded(tmp_path)
        store.path.unlink()
        reopened = ResultStore(store.path)
        assert len(reopened) == len(keys)
        assert reopened.stats()["recoveries"] == 1
        for i, key in enumerate(keys):
            assert reopened.get(key) == {"errors": i}

    def test_torn_sidecar_tail_is_tolerated(self, tmp_path):
        store, keys = self._seeded(tmp_path)
        raw = store.sidecar_path.read_bytes()
        store.sidecar_path.write_bytes(raw[: len(raw) - 20])  # torn tail
        store.path.unlink()
        reopened = ResultStore(store.path)
        assert len(reopened) == len(keys) - 1
        for i, key in enumerate(keys[:-1]):
            assert reopened.get(key) == {"errors": i}

    def test_corrupt_sqlite_file_recovers(self, tmp_path):
        store, keys = self._seeded(tmp_path)
        store.path.write_bytes(b"this is not a sqlite database at all")
        reopened = ResultStore(store.path)
        assert reopened.stats()["recoveries"] == 1
        assert len(reopened) == len(keys)
        assert store.path.with_name(store.path.name + ".corrupt").exists()
        for i, key in enumerate(keys):
            assert reopened.get(key) == {"errors": i}

    def test_fingerprint_mismatch_is_a_loud_miss(self, tmp_path):
        store, keys = self._seeded(tmp_path, n=1)
        conn = sqlite3.connect(str(store.path))
        provenance = dict(keys[0].provenance())
        provenance["vdd"] = 0.999
        conn.execute(
            "UPDATE results SET provenance = ?",
            (json.dumps(provenance, sort_keys=True),),
        )
        conn.commit()
        conn.close()
        probe = ResultStore(store.path)  # fresh LRU, forces SQLite read
        assert probe.get(keys[0]) is None
        stats = probe.stats()
        assert stats["corrupt_entries"] == 1
        assert stats["rows"] == 0  # poisoned row deleted

    def test_concurrent_writers_share_one_database(self, tmp_path):
        path = tmp_path / "s.sqlite"
        writer_a, writer_b = ResultStore(path), ResultStore(path)
        keys = _fig5_keys(BatchCampaign(seed=5))
        errors = []

        def hammer(store, assigned):
            try:
                for i, key in assigned:
                    store.put(key, {"errors": i})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        split = [
            (writer_a, [(i, k) for i, k in enumerate(keys) if i % 2 == 0]),
            (writer_b, [(i, k) for i, k in enumerate(keys) if i % 2 == 1]),
        ]
        threads = [
            threading.Thread(target=hammer, args=pair) for pair in split
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        reader = ResultStore(path)
        for i, key in enumerate(keys):
            assert reader.get(key) == {"errors": i}


class TestInflightDedup:
    def test_fetch_or_compute_runs_once_across_threads(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        key = fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0)
        compute_calls = []
        barrier = threading.Barrier(2)

        def compute():
            compute_calls.append(threading.get_ident())
            time.sleep(0.05)  # keep the claim open while both race
            return {"errors": 42}

        outcomes = []

        def race():
            barrier.wait()
            outcomes.append(store.fetch_or_compute(key, compute))

        threads = [threading.Thread(target=race) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(compute_calls) == 1
        assert [payload for payload, _ in outcomes] == [
            {"errors": 42},
            {"errors": 42},
        ]
        assert sorted(cached for _, cached in outcomes) == [False, True]
        assert store.stats()["inflight_waits"] >= 1

    def test_owner_failure_hands_claim_to_waiter(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        key = fig5_point_key(ACCESS_CELL_BASED_40NM, 0.4, 100, 32, 5, 0)

        def exploding():
            raise RuntimeError("owner died")

        with pytest.raises(RuntimeError):
            store.fetch_or_compute(key, exploding)
        # The claim was released; a second caller computes normally.
        payload, cached = store.fetch_or_compute(
            key, lambda: {"errors": 1}
        )
        assert (payload, cached) == ({"errors": 1}, False)


class TestFig5GridStore:
    def test_mixed_cache_assembly_is_bit_identical(self, tmp_path):
        campaign = BatchCampaign(seed=5)
        baseline = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTS, ACCESSES
        )
        store = ResultStore(tmp_path / "s.sqlite")
        cold = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTS, ACCESSES, store=store
        )
        np.testing.assert_array_equal(cold.errors, baseline.errors)

        warm = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTS, ACCESSES, store=store
        )
        np.testing.assert_array_equal(warm.errors, baseline.errors)
        assert store.stats()["hits"] == len(VOLTS)

        # Half-primed store: even points cached, odd points fresh.
        half = ResultStore(tmp_path / "half.sqlite")
        for i, key in enumerate(_fig5_keys(campaign)):
            if i % 2 == 0:
                half.put(key, store.get(key))
        mixed = campaign.access_ber_grid(
            ACCESS_CELL_BASED_40NM, VOLTS, ACCESSES, store=half
        )
        np.testing.assert_array_equal(mixed.errors, baseline.errors)
        stats = half.stats()
        assert stats["misses"] == len(VOLTS) // 2
        assert len(half) == len(VOLTS)  # fresh points published back


class TestRetentionCurveStore:
    VOLTS = np.linspace(0.4, 1.0, 5)

    def _curve(self, store=None):
        return BatchCampaign(seed=2014).retention_failure_curve(
            RETENTION_COMMERCIAL_40NM, ACCESS_COMMERCIAL_40NM, self.VOLTS,
            n_dies=4, words=64, bits=32, store=store,
        )

    def test_cold_warm_and_mixed_match_storeless(self, tmp_path):
        baseline = self._curve()
        store = ResultStore(tmp_path / "s.sqlite")
        cold = self._curve(store=store)
        np.testing.assert_array_equal(cold, baseline)
        assert len(store) == 4

        warm = self._curve(store=store)
        np.testing.assert_array_equal(warm, baseline)
        assert store.stats()["hits"] == 4

        # Drop the two oldest dies; the re-run mixes cached and fresh.
        store.gc(keep=2)
        mixed = self._curve(store=store)
        np.testing.assert_array_equal(mixed, baseline)
        assert len(store) == 4


class TestCampaignStore:
    #: Worst-case macro at a supply where real bits flip (the SECDED
    #: campaign then exercises injection + correction, so the stored
    #: payload carries nonzero totals) while staying fast.
    RUNS = 2
    VDD = 0.44

    def _kwargs(self, store, **overrides):
        program = build_fft_program(64)
        golden = program.expected_output(list(program.data_words[:64]))
        kwargs = dict(
            workload=program.workload,
            golden=golden,
            access_model=ACCESS_CELL_BASED_40NM,
            vdd=self.VDD,
            runs=self.RUNS,
            seed_base=100,
            macro_style="cell-based",
            store=store,
        )
        kwargs.update(overrides)
        return kwargs

    def test_warm_result_is_bit_identical_and_store_served(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        cold = run_campaign(SecdedRunner, **self._kwargs(store))
        assert cold.resilience is not None  # actually executed
        warm = run_campaign(SecdedRunner, **self._kwargs(store))
        assert warm.resilience is None  # served, not executed
        assert warm == cold  # resilience is compare=False: bit-identity

    def test_execution_knobs_do_not_change_the_key(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        cold = run_campaign(SecdedRunner, **self._kwargs(store))
        warm = run_campaign(
            SecdedRunner,
            **self._kwargs(store, max_retries=7, task_timeout=30.0),
        )
        assert warm.resilience is None
        assert warm == cold

    def test_payload_codec_roundtrips_exactly(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        cold = run_campaign(SecdedRunner, **self._kwargs(store))
        payload = encode_campaign_result(cold)
        decoded = decode_campaign_result(payload)
        assert decoded == cold
        assert encode_campaign_result(decoded) == payload

    def test_grid_pipeline_counts_hits(self, tmp_path):
        program = build_fft_program(64)
        golden = program.expected_output(list(program.data_words[:64]))
        store = ResultStore(tmp_path / "s.sqlite")
        vdds = [0.44, 0.46]
        cold = scheme_failure_grid(
            SecdedRunner, program.workload, golden,
            ACCESS_CELL_BASED_40NM, vdds,
            store=store, runs=self.RUNS, seed_base=100,
            macro_style="cell-based",
        )
        assert (cold.hits, cold.executed_points) == (0, 2)
        warm = scheme_failure_grid(
            SecdedRunner, program.workload, golden,
            ACCESS_CELL_BASED_40NM, vdds,
            store=store, runs=self.RUNS, seed_base=100,
            macro_style="cell-based",
        )
        assert (warm.hits, warm.executed_points) == (2, 0)
        assert warm.hit_ratio == 1.0
        assert warm.results == cold.results

    def test_quick_math_guard(self):
        # p_bit at the test voltage is tiny but nonzero: the campaign
        # exercises the fault machinery without being dominated by it.
        p = ACCESS_CELL_BASED_40NM.bit_error_probability(self.VDD)
        assert 0.0 < p < 1e-3
        assert math.isfinite(p)
