"""Unit tests for the delay model (backs Figure 10 and Table 2 floors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.delay import (
    delay_scaling_factor,
    inverter_delay,
    logic_max_frequency,
    minimum_voltage_for_frequency,
    monte_carlo_inverter_delay,
)
from repro.tech.node import (
    NODE_10NM_MG,
    NODE_14NM_FINFET,
    NODE_40NM_LP,
)


class TestInverterDelay:
    def test_rejects_non_positive_vdd(self):
        with pytest.raises(ValueError):
            inverter_delay(NODE_40NM_LP, 0.0)

    def test_monotonically_falls_with_voltage(self):
        delays = [inverter_delay(NODE_40NM_LP, v) for v in np.arange(0.25, 1.15, 0.05)]
        assert all(b < a for a, b in zip(delays, delays[1:]))

    def test_near_threshold_blowup(self):
        """Delay explodes near/below V_th — the core NTC trade-off."""
        assert inverter_delay(NODE_40NM_LP, 0.35) > 30.0 * inverter_delay(
            NODE_40NM_LP, 1.1
        )

    def test_positive_vth_shift_slows_gate(self):
        fast = inverter_delay(NODE_40NM_LP, 0.45, vth_shift=0.0)
        slow = inverter_delay(NODE_40NM_LP, 0.45, vth_shift=0.05)
        assert slow > fast

    def test_picosecond_scale_at_nominal(self):
        delay = inverter_delay(NODE_40NM_LP, 1.1)
        assert 1e-13 < delay < 1e-10

    @given(vdd=st.floats(min_value=0.2, max_value=1.3))
    @settings(max_examples=50, deadline=None)
    def test_delay_always_positive(self, vdd):
        assert inverter_delay(NODE_40NM_LP, vdd) > 0.0


class TestMonteCarloDelay:
    def test_mean_close_to_deterministic(self):
        result = monte_carlo_inverter_delay(
            NODE_40NM_LP, 0.6, samples=2000, rng=np.random.default_rng(1)
        )
        nominal = inverter_delay(NODE_40NM_LP, 0.6)
        # mismatch skews the mean slightly upward but not wildly
        assert result.mean == pytest.approx(nominal, rel=0.25)

    def test_sigma_grows_towards_threshold(self):
        """Figure 10: relative spread explodes at near-threshold."""
        rng = np.random.default_rng(2)
        low = monte_carlo_inverter_delay(NODE_14NM_FINFET, 0.3, 1500, rng=rng)
        high = monte_carlo_inverter_delay(NODE_14NM_FINFET, 0.8, 1500, rng=rng)
        assert low.sigma_over_mean > 3.0 * high.sigma_over_mean

    def test_10nm_tighter_than_14nm(self):
        """Figure 10: 10 nm multi-gate shows smaller sigma spread."""
        rng = np.random.default_rng(3)
        finfet14 = monte_carlo_inverter_delay(NODE_14NM_FINFET, 0.35, 2000, rng=rng)
        mg10 = monte_carlo_inverter_delay(NODE_10NM_MG, 0.35, 2000, rng=rng)
        assert mg10.sigma_over_mean < finfet14.sigma_over_mean

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            monte_carlo_inverter_delay(NODE_40NM_LP, 0.6, samples=1)


class TestScalingFactor:
    def test_10nm_is_about_2x_faster_than_14nm(self):
        """Section VI: 'Going from 14nm to 10nm results in a 2x speed-up'."""
        factor = delay_scaling_factor(NODE_10NM_MG, NODE_14NM_FINFET, 0.4)
        assert 1.5 < factor < 3.5


class TestMaxFrequency:
    def test_monotonic_in_voltage(self):
        freqs = [logic_max_frequency(NODE_40NM_LP, v) for v in (0.3, 0.5, 0.8, 1.1)]
        assert all(b > a for a, b in zip(freqs, freqs[1:]))

    def test_guardband_lowers_frequency(self):
        loose = logic_max_frequency(NODE_40NM_LP, 0.4, guardband_sigma=0.0)
        tight = logic_max_frequency(NODE_40NM_LP, 0.4, guardband_sigma=4.0)
        assert tight < loose


class TestMinimumVoltageForFrequency:
    def test_round_trip(self):
        target = 50e6
        vmin = minimum_voltage_for_frequency(NODE_40NM_LP, target)
        assert logic_max_frequency(NODE_40NM_LP, vmin) >= target
        assert logic_max_frequency(NODE_40NM_LP, vmin - 0.01) < target

    def test_low_frequency_hits_floor(self):
        vmin = minimum_voltage_for_frequency(NODE_40NM_LP, 1.0, vdd_low=0.15)
        assert vmin == pytest.approx(0.15)

    def test_unreachable_frequency_raises(self):
        with pytest.raises(ValueError):
            minimum_voltage_for_frequency(NODE_40NM_LP, 1e15)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            minimum_voltage_for_frequency(NODE_40NM_LP, 0.0)

    @given(freq=st.floats(min_value=1e5, max_value=1e9))
    @settings(max_examples=20, deadline=None)
    def test_solution_always_meets_target(self, freq):
        vmin = minimum_voltage_for_frequency(NODE_40NM_LP, freq)
        assert logic_max_frequency(NODE_40NM_LP, vmin) >= freq * 0.999
