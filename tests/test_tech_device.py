"""Unit tests for the EKV-style device model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.device import (
    DeviceParameters,
    drive_current,
    inversion_coefficient,
    thermal_voltage,
)
from repro.tech.node import NODE_40NM_LP


def make_device(**overrides):
    params = dict(
        vth=0.45,
        subthreshold_slope_mv=90.0,
        i_spec_ua_per_um=300.0,
        dibl_mv_per_v=100.0,
        avt_mv_um=3.5,
    )
    params.update(overrides)
    return DeviceParameters(**params)


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(25.0) == pytest.approx(0.0257, abs=2e-4)

    def test_increases_with_temperature(self):
        assert thermal_voltage(125.0) > thermal_voltage(25.0)


class TestDeviceParameters:
    def test_rejects_negative_vth(self):
        with pytest.raises(ValueError):
            make_device(vth=-0.1)

    def test_rejects_sub_thermionic_slope(self):
        with pytest.raises(ValueError):
            make_device(subthreshold_slope_mv=50.0)

    def test_rejects_non_positive_ispec(self):
        with pytest.raises(ValueError):
            make_device(i_spec_ua_per_um=0.0)

    def test_rejects_negative_dibl(self):
        with pytest.raises(ValueError):
            make_device(dibl_mv_per_v=-1.0)

    def test_slope_factor_above_one(self):
        # 90 mV/dec is worse than the 59.6 mV/dec ideal => n > 1.
        assert make_device().slope_factor() > 1.0

    def test_ideal_slope_factor_is_one(self):
        ideal = 1000.0 * thermal_voltage(25.0) * math.log(10.0)
        device = make_device(subthreshold_slope_mv=ideal + 1e-9)
        assert device.slope_factor() == pytest.approx(1.0, rel=1e-6)

    def test_vth_shift_returns_new_instance(self):
        device = make_device()
        shifted = device.with_vth_shift(0.05)
        assert shifted.vth == pytest.approx(0.50)
        assert device.vth == pytest.approx(0.45)


class TestDriveCurrent:
    def test_monotonic_in_vgs(self):
        device = make_device()
        currents = [drive_current(device, v) for v in [0.2, 0.3, 0.45, 0.7, 1.1]]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_scales_with_width(self):
        device = make_device()
        single = drive_current(device, 0.6, width_um=1.0)
        double = drive_current(device, 0.6, width_um=2.0)
        assert double == pytest.approx(2.0 * single)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            drive_current(make_device(), 0.6, width_um=0.0)

    def test_subthreshold_is_exponential(self):
        """Two equal V_GS steps below threshold give equal current ratios."""
        device = make_device()
        i1 = drive_current(device, 0.20)
        i2 = drive_current(device, 0.25)
        i3 = drive_current(device, 0.30)
        assert i2 / i1 == pytest.approx(i3 / i2, rel=0.05)

    def test_subthreshold_slope_matches_parameter(self):
        """A decade of current per SS millivolts of gate drive."""
        device = make_device(dibl_mv_per_v=0.0)
        step = device.subthreshold_slope_mv * 1e-3
        i1 = drive_current(device, 0.15, vds=1.0)
        i2 = drive_current(device, 0.15 + step, vds=1.0)
        assert i2 / i1 == pytest.approx(10.0, rel=0.05)

    def test_strong_inversion_is_roughly_quadratic(self):
        device = make_device()
        i1 = drive_current(device, device.vth + 0.4)
        i2 = drive_current(device, device.vth + 0.8)
        ratio = i2 / i1
        assert 3.0 < ratio < 5.0  # exact square law would give 4

    def test_dibl_raises_current(self):
        device = make_device()
        low_vds = drive_current(device, 0.3, vds=0.1)
        high_vds = drive_current(device, 0.3, vds=1.1)
        assert high_vds > low_vds

    def test_steeper_slope_improves_on_off_ratio(self):
        """The finFET advantage: more decades of current per volt of
        gate drive, i.e. a better on/off ratio at the same V_th."""
        planar = make_device(subthreshold_slope_mv=95.0, dibl_mv_per_v=0.0)
        finfet = make_device(subthreshold_slope_mv=68.0, dibl_mv_per_v=0.0)

        def on_off(device):
            return drive_current(device, 0.45, vds=0.45) / drive_current(
                device, 0.0, vds=0.45
            )

        assert on_off(finfet) > 10.0 * on_off(planar)

    @given(vgs=st.floats(min_value=0.05, max_value=1.3))
    @settings(max_examples=50, deadline=None)
    def test_current_always_positive(self, vgs):
        assert drive_current(make_device(), vgs) > 0.0

    @given(
        vgs=st.floats(min_value=0.05, max_value=1.2),
        delta=st.floats(min_value=0.005, max_value=0.1),
    )
    @settings(max_examples=50, deadline=None)
    def test_current_strictly_monotonic(self, vgs, delta):
        device = make_device()
        assert drive_current(device, vgs + delta) > drive_current(device, vgs)


class TestInversionCoefficient:
    def test_weak_inversion_below_threshold(self):
        device = make_device(dibl_mv_per_v=0.0)
        assert inversion_coefficient(device, 0.2) < 0.1

    def test_moderate_inversion_near_threshold(self):
        device = make_device(dibl_mv_per_v=0.0)
        ic = inversion_coefficient(device, device.vth)
        assert 0.1 < ic < 10.0

    def test_strong_inversion_above_threshold(self):
        device = make_device(dibl_mv_per_v=0.0)
        assert inversion_coefficient(device, device.vth + 0.5) > 10.0

    def test_large_overdrive_does_not_overflow(self):
        device = make_device()
        ic = inversion_coefficient(device, 5.0)
        assert math.isfinite(ic)
        assert ic > 1000.0


class TestNodeDevices:
    def test_40nm_node_device_sane(self):
        i_on = drive_current(NODE_40NM_LP.nmos, 1.1)
        # hundreds of uA/um at nominal voltage for a 40 nm LP NMOS
        assert 1e-4 < i_on < 5e-3
