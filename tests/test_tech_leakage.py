"""Unit tests for the leakage model (backs Figure 1's static component)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.leakage import (
    leakage_current_per_um,
    leakage_power,
    leakage_reduction_ratio,
)
from repro.tech.node import NODE_40NM_LP


class TestLeakageCurrent:
    def test_zero_supply_zero_current(self):
        assert leakage_current_per_um(NODE_40NM_LP.nmos, 0.0) == pytest.approx(0.0)

    def test_grows_with_supply(self):
        """DIBL makes the off current rise with V_DD."""
        currents = [
            leakage_current_per_um(NODE_40NM_LP.nmos, v)
            for v in (0.3, 0.6, 0.9, 1.1)
        ]
        assert all(b > a for a, b in zip(currents, currents[1:]))

    def test_low_vth_leaks_more(self):
        high = leakage_current_per_um(NODE_40NM_LP.nmos, 1.1, vth_shift=0.05)
        low = leakage_current_per_um(NODE_40NM_LP.nmos, 1.1, vth_shift=-0.05)
        assert low > high

    def test_rejects_negative_vdd(self):
        with pytest.raises(ValueError):
            leakage_current_per_um(NODE_40NM_LP.nmos, -0.1)

    def test_magnitude_is_subthreshold_scale(self):
        """40 nm LP off-current should be well below 1 uA/um at nominal."""
        current = leakage_current_per_um(NODE_40NM_LP.nmos, 1.1)
        assert 1e-14 < current < 1e-6

    @given(vdd=st.floats(min_value=0.0, max_value=1.3))
    @settings(max_examples=50, deadline=None)
    def test_never_negative(self, vdd):
        assert leakage_current_per_um(NODE_40NM_LP.nmos, vdd) >= 0.0


class TestLeakagePower:
    def test_scales_with_width(self):
        p1 = leakage_power(NODE_40NM_LP.nmos, 1.1, 100.0)
        p2 = leakage_power(NODE_40NM_LP.nmos, 1.1, 200.0)
        assert p2 == pytest.approx(2.0 * p1)

    def test_zero_width_zero_power(self):
        assert leakage_power(NODE_40NM_LP.nmos, 1.1, 0.0) == 0.0

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            leakage_power(NODE_40NM_LP.nmos, 1.1, -1.0)


class TestLeakageReduction:
    def test_paper_claims_up_to_10x(self):
        """Section II: supply scaling achieves 'up to 10x better static
        power'; nominal (1.1 V) to retention (~0.4 V) must deliver at
        least that much in the model."""
        ratio = leakage_reduction_ratio(NODE_40NM_LP.nmos, 1.1, 0.4)
        assert ratio > 10.0

    def test_ratio_of_equal_voltages_is_one(self):
        assert leakage_reduction_ratio(
            NODE_40NM_LP.nmos, 0.8, 0.8
        ) == pytest.approx(1.0)
