"""Unit tests for Pelgrom mismatch statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tech.mismatch import MismatchModel, sample_vth_shifts, sigma_vth
from repro.tech.node import NODE_10NM_MG, NODE_40NM_LP


class TestSigmaVth:
    def test_pelgrom_area_scaling(self):
        """Quadrupling the area halves the mismatch sigma."""
        small = sigma_vth(3.5, 0.1, 0.04)
        large = sigma_vth(3.5, 0.2, 0.08)
        assert small == pytest.approx(2.0 * large)

    def test_unit_area_equals_avt(self):
        assert sigma_vth(3.5, 1.0, 1.0) == pytest.approx(3.5e-3)

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            sigma_vth(3.5, 0.0, 0.04)

    @given(
        avt=st.floats(min_value=0.5, max_value=6.0),
        w=st.floats(min_value=0.02, max_value=2.0),
        length=st.floats(min_value=0.02, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_positive(self, avt, w, length):
        assert sigma_vth(avt, w, length) > 0.0


class TestSampleVthShifts:
    def test_count_and_zero_mean(self):
        rng = np.random.default_rng(7)
        shifts = sample_vth_shifts(3.5, 0.12, 0.04, 200_000, rng)
        assert shifts.shape == (200_000,)
        sigma = sigma_vth(3.5, 0.12, 0.04)
        assert abs(shifts.mean()) < 4.0 * sigma / np.sqrt(200_000)
        assert shifts.std() == pytest.approx(sigma, rel=0.02)

    def test_zero_count(self):
        rng = np.random.default_rng(7)
        assert sample_vth_shifts(3.5, 0.12, 0.04, 0, rng).shape == (0,)

    def test_rejects_negative_count(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            sample_vth_shifts(3.5, 0.12, 0.04, -1, rng)

    def test_reproducible_with_seed(self):
        a = sample_vth_shifts(3.5, 0.12, 0.04, 32, np.random.default_rng(3))
        b = sample_vth_shifts(3.5, 0.12, 0.04, 32, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestMismatchModel:
    def test_sigma_matches_free_function(self):
        model = MismatchModel(NODE_40NM_LP.nmos, width_um=0.12, length_um=0.04)
        assert model.sigma() == pytest.approx(
            sigma_vth(NODE_40NM_LP.nmos.avt_mv_um, 0.12, 0.04)
        )

    def test_sample_devices_shifts_thresholds(self):
        model = MismatchModel(NODE_40NM_LP.nmos, width_um=0.12, length_um=0.04)
        devices = model.sample_devices(64, np.random.default_rng(11))
        assert len(devices) == 64
        vths = {d.vth for d in devices}
        assert len(vths) > 1  # genuinely different samples

    def test_finfet_mismatch_tighter_than_planar(self):
        """Section VI: finFET A_vt is under much tighter control."""
        planar = MismatchModel(NODE_40NM_LP.nmos, 0.12, 0.04)
        finfet = MismatchModel(NODE_10NM_MG.nmos, 0.12, 0.04)
        assert finfet.sigma() < 0.5 * planar.sigma()
