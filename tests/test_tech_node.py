"""Unit tests for technology nodes and corners."""

import pytest

from repro.tech.node import (
    NODE_10NM_MG,
    NODE_14NM_FINFET,
    NODE_40NM_LP,
    NODE_65NM_LP,
    Corner,
    get_node,
    list_nodes,
)


class TestNodeRegistry:
    def test_all_four_nodes_listed(self):
        assert len(list_nodes()) == 4

    def test_lookup_by_name(self):
        assert get_node("40nm-LP") is NODE_40NM_LP

    def test_unknown_node_raises_with_hint(self):
        with pytest.raises(KeyError, match="40nm-LP"):
            get_node("7nm")


class TestNodeTrends:
    """Section VI's qualitative claims encoded as invariants."""

    def test_subthreshold_slope_improves_with_scaling(self):
        slopes = [
            NODE_65NM_LP.nmos.subthreshold_slope_mv,
            NODE_40NM_LP.nmos.subthreshold_slope_mv,
            NODE_14NM_FINFET.nmos.subthreshold_slope_mv,
            NODE_10NM_MG.nmos.subthreshold_slope_mv,
        ]
        assert all(b < a for a, b in zip(slopes, slopes[1:]))

    def test_avt_improves_with_finfets(self):
        assert NODE_14NM_FINFET.nmos.avt_mv_um < NODE_40NM_LP.nmos.avt_mv_um
        assert NODE_10NM_MG.nmos.avt_mv_um < NODE_14NM_FINFET.nmos.avt_mv_um

    def test_wire_capacitance_shrinks(self):
        assert NODE_10NM_MG.wire_cap_ff_per_um < NODE_40NM_LP.wire_cap_ff_per_um

    def test_drive_current_grows(self):
        assert (
            NODE_10NM_MG.nmos.i_spec_ua_per_um
            > NODE_14NM_FINFET.nmos.i_spec_ua_per_um
            > NODE_40NM_LP.nmos.i_spec_ua_per_um
        )


class TestCorners:
    def test_ss_corner_raises_vth(self):
        ss = NODE_40NM_LP.at_corner(Corner.SS)
        assert ss.nmos.vth > NODE_40NM_LP.nmos.vth
        assert ss.pmos.vth > NODE_40NM_LP.pmos.vth

    def test_ff_corner_lowers_vth(self):
        ff = NODE_40NM_LP.at_corner(Corner.FF)
        assert ff.nmos.vth < NODE_40NM_LP.nmos.vth

    def test_tt_corner_is_identity_on_devices(self):
        tt = NODE_40NM_LP.at_corner(Corner.TT)
        assert tt.nmos.vth == NODE_40NM_LP.nmos.vth

    def test_corner_renames_node(self):
        assert NODE_40NM_LP.at_corner(Corner.SS).name == "40nm-LP/SS"

    def test_original_unmodified(self):
        vth_before = NODE_40NM_LP.nmos.vth
        NODE_40NM_LP.at_corner(Corner.SS)
        assert NODE_40NM_LP.nmos.vth == vth_before


class TestAreaScaling:
    def test_65_to_40_matches_paper_footnote(self):
        """Table 1 footnote *4: area scaled by (40/65)^2."""
        factor = NODE_40NM_LP.area_scale_from(NODE_65NM_LP)
        assert factor == pytest.approx((40.0 / 65.0) ** 2)

    def test_self_scale_is_unity(self):
        assert NODE_40NM_LP.area_scale_from(NODE_40NM_LP) == pytest.approx(1.0)
