"""Temperature behaviour of the device models.

Near threshold, CMOS exhibits *temperature inversion*: higher junction
temperature increases sub-threshold current (the thermal voltage and
effective overdrive grow faster than mobility degrades in this simple
model), so near-threshold logic speeds UP when hot — the opposite of
the super-threshold intuition, and a first-order effect for NTC sign-
off.  These tests pin that behaviour plus the leakage temperature
dependence.
"""

from repro.tech.delay import inverter_delay, logic_max_frequency
from repro.tech.device import drive_current
from repro.tech.leakage import leakage_current_per_um, leakage_power
from repro.tech.node import NODE_40NM_LP


class TestTemperatureInversion:
    def test_hot_subthreshold_current_is_higher(self):
        cold = drive_current(NODE_40NM_LP.nmos, 0.25, temperature_c=-20.0)
        hot = drive_current(NODE_40NM_LP.nmos, 0.25, temperature_c=105.0)
        assert hot > 2.0 * cold

    def test_near_threshold_logic_speeds_up_when_hot(self):
        """Temperature inversion at the NTC operating point."""
        cold = inverter_delay(NODE_40NM_LP, 0.35, temperature_c=-20.0)
        hot = inverter_delay(NODE_40NM_LP, 0.35, temperature_c=105.0)
        assert hot < cold

    def test_temperature_sensitivity_shrinks_with_voltage(self):
        """The hot/cold delay ratio is dramatic at 0.35 V and modest at
        nominal — the crossover behind 'temperature inversion'."""

        def hot_cold_ratio(vdd: float) -> float:
            cold = inverter_delay(NODE_40NM_LP, vdd, temperature_c=-20.0)
            hot = inverter_delay(NODE_40NM_LP, vdd, temperature_c=105.0)
            return cold / hot

        assert hot_cold_ratio(0.35) > 3.0 * hot_cold_ratio(1.1)

    def test_max_frequency_tracks(self):
        cold = logic_max_frequency(NODE_40NM_LP, 0.4, temperature_c=-20.0)
        hot = logic_max_frequency(NODE_40NM_LP, 0.4, temperature_c=105.0)
        assert hot > cold


class TestLeakageTemperature:
    def test_leakage_explodes_with_temperature(self):
        """The classic exponential leakage-temperature dependence: the
        hot corner dominates any standby budget."""
        cold = leakage_current_per_um(
            NODE_40NM_LP.nmos, 1.1, temperature_c=25.0
        )
        hot = leakage_current_per_um(
            NODE_40NM_LP.nmos, 1.1, temperature_c=105.0
        )
        assert hot > 5.0 * cold

    def test_leakage_power_temperature_passthrough(self):
        cold = leakage_power(
            NODE_40NM_LP.nmos, 0.6, 1000.0, temperature_c=0.0
        )
        hot = leakage_power(
            NODE_40NM_LP.nmos, 0.6, 1000.0, temperature_c=85.0
        )
        assert hot > cold

    def test_retention_standby_worst_case_is_hot(self):
        """The standby planner's voltage choice must be validated at
        the hot corner: the hot population retains worse AND leaks
        more, compounding."""
        from repro.core.retention import RETENTION_CELL_BASED_40NM

        hot_retention = RETENTION_CELL_BASED_40NM.at_temperature(105.0)
        cold_retention = RETENTION_CELL_BASED_40NM.at_temperature(-20.0)
        assert hot_retention.first_failure_voltage(32768) > (
            cold_retention.first_failure_voltage(32768)
        )
