"""Tests for the FFT workload: packing, reference model, codegen."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cpu import StopReason
from repro.soc.memory import FaultyMemory
from repro.soc.platform import Platform
from repro.soc.ports import RawPort
from repro.workloads.fft import (
    build_fft_program,
    fixed_point_fft_reference,
    float_fft_of_packed,
    generate_input,
    pack_complex,
    twiddle_words,
    unpack_complex,
)
from repro.workloads.streaming import Phase, StreamingWorkload


class TestPacking:
    @given(
        re=st.integers(-32768, 32767), im=st.integers(-32768, 32767)
    )
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, re, im):
        assert unpack_complex(pack_complex(re, im)) == (re, im)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_complex(32768, 0)
        with pytest.raises(ValueError):
            pack_complex(0, -32769)

    def test_layout_re_high(self):
        assert pack_complex(1, 0) == 1 << 16
        assert pack_complex(0, 1) == 1


class TestTwiddles:
    def test_first_twiddle_is_unity(self):
        re, im = unpack_complex(twiddle_words(64)[0])
        assert re == 32767
        assert im == 0

    def test_quarter_turn(self):
        words = twiddle_words(64)
        re, im = unpack_complex(words[16])  # e^{-i pi/2} = -i
        assert abs(re) <= 1
        assert im == -32767

    def test_unit_magnitude(self):
        for word in twiddle_words(32):
            re, im = unpack_complex(word)
            mag = (re * re + im * im) ** 0.5 / 32767.0
            assert mag == pytest.approx(1.0, abs=2e-4)


class TestReferenceModel:
    def test_impulse_gives_flat_spectrum(self):
        n = 64
        data = generate_input(n, kind="impulse", amplitude=0.5)
        out = fixed_point_fft_reference(data)
        # FFT(impulse)/n: every bin equals amplitude/n.
        expected = int(round(0.5 * 32767)) >> 6  # /64 via 6 stage shifts
        for word in out:
            re, im = unpack_complex(word)
            assert abs(re - expected) <= 1
            assert abs(im) <= 1

    def test_matches_float_fft(self):
        n = 128
        data = generate_input(n, kind="noise", seed=3)
        out = fixed_point_fft_reference(data)
        got = np.array(
            [complex(*unpack_complex(w)) / 32767.0 for w in out]
        )
        ref = float_fft_of_packed(data)
        assert np.abs(got - ref).max() < 1e-3

    def test_tone_lands_in_its_bin(self):
        n = 64
        data = generate_input(n, kind="tones")
        out = fixed_point_fft_reference(data)
        mags = [
            abs(complex(*unpack_complex(w))) for w in out
        ]
        peaks = sorted(range(n), key=lambda i: -mags[i])[:2]
        assert set(peaks) == {3, n // 5}

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fixed_point_fft_reference([0] * 12)

    def test_linearity_in_scaling(self):
        """Halving the input halves the output (within rounding)."""
        n = 32
        full = generate_input(n, kind="tones", amplitude=0.4)
        half = [
            pack_complex(re // 2, im // 2)
            for re, im in map(unpack_complex, full)
        ]
        out_full = fixed_point_fft_reference(full)
        out_half = fixed_point_fft_reference(half)
        for wf, wh in zip(out_full, out_half):
            rf, imf = unpack_complex(wf)
            rh, imh = unpack_complex(wh)
            assert abs(rf - 2 * rh) <= 8
            assert abs(imf - 2 * imh) <= 8


class TestGeneratedProgram:
    @pytest.mark.parametrize("n", [16, 64, 256])
    def test_simulator_matches_reference(self, n):
        prog = build_fft_program(n)
        platform = self._run(prog)
        out = platform.read_data(0, n)
        assert out == prog.expected_output(list(prog.data_words[:n]))

    def test_phase_count(self):
        prog = build_fft_program(64)
        assert prog.workload.n_phases == 7  # bitrev + 6 stages

    def test_yields_match_phases(self):
        prog = build_fft_program(16)
        platform = self._build(prog)
        yields = 0
        while platform.run_until_stop() is StopReason.YIELD:
            yields += 1
        assert yields == prog.workload.n_phases

    def test_program_fits_4kb_im(self):
        prog = build_fft_program(1024)
        assert len(prog.workload.program_words) <= 1024

    def test_data_fits_8kb_sp(self):
        prog = build_fft_program(1024)
        assert len(prog.workload.data_words) <= 2048

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            build_fft_program(12)
        with pytest.raises(ValueError):
            build_fft_program(64, input_words=[0] * 63)

    def test_custom_input(self):
        n = 16
        data = generate_input(n, kind="impulse")
        prog = build_fft_program(n, input_words=data)
        platform = self._run(prog)
        assert platform.read_data(0, n) == prog.expected_output(data)

    @staticmethod
    def _build(prog):
        im = FaultyMemory("IM", 1024, 32)
        sp = FaultyMemory("SP", 2048, 32)
        platform = Platform(im, RawPort(im), sp, RawPort(sp))
        platform.load_program(list(prog.workload.program_words))
        platform.load_data(list(prog.data_words))
        return platform

    @classmethod
    def _run(cls, prog):
        platform = cls._build(prog)
        while platform.run_until_stop() is not StopReason.HALT:
            pass
        return platform


class TestStreamingWorkload:
    def test_phase_validation(self):
        with pytest.raises(ValueError):
            Phase(index=-1, name="x", chunk_base=0, chunk_words=4)
        with pytest.raises(ValueError):
            Phase(index=0, name="x", chunk_base=0, chunk_words=0)

    def test_workload_validation(self):
        phase = Phase(index=0, name="only", chunk_base=0, chunk_words=4)
        with pytest.raises(ValueError):
            StreamingWorkload(
                name="w", program_words=(), phases=(phase,),
                data_words=(0,), data_base=0, result_base=0, result_words=1,
            )
        bad_phase = Phase(index=1, name="x", chunk_base=0, chunk_words=4)
        with pytest.raises(ValueError):
            StreamingWorkload(
                name="w", program_words=(1,), phases=(bad_phase,),
                data_words=(0,), data_base=0, result_base=0, result_words=1,
            )
