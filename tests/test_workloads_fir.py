"""Tests for the FIR streaming workload."""

import numpy as np
import pytest

from repro.soc.cpu import StopReason
from repro.soc.memory import FaultyMemory
from repro.soc.platform import Platform
from repro.soc.ports import RawPort
from repro.workloads.fir import (
    _signed32,
    build_fir_program,
    fir_reference,
    generate_signal,
    lowpass_taps,
)


def run_on_platform(prog):
    im = FaultyMemory("IM", 1024, 32)
    sp = FaultyMemory("SP", 2048, 32)
    platform = Platform(im, RawPort(im), sp, RawPort(sp))
    platform.load_program(list(prog.workload.program_words))
    platform.load_data(list(prog.workload.data_words))
    yields = 0
    while platform.run_until_stop() is not StopReason.HALT:
        yields += 1
    return platform, yields


class TestTaps:
    def test_bounded_for_accumulator_safety(self):
        """|sum of taps| must stay below 1.0 in Q15 so the 32-bit
        accumulator of the generated code cannot overflow."""
        for n_taps in (8, 16, 32):
            taps = lowpass_taps(n_taps)
            assert sum(abs(t) for t in taps) < 32768

    def test_lowpass_dc_gain_near_unity_normalisation(self):
        taps = lowpass_taps(16, cutoff=0.2)
        dc = sum(taps) / 32767.0
        assert 0.5 < dc <= 1.0

    def test_symmetric(self):
        taps = lowpass_taps(16)
        assert taps == taps[::-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            lowpass_taps(1)
        with pytest.raises(ValueError):
            lowpass_taps(8, cutoff=0.6)


class TestReference:
    def test_matches_numpy_convolution(self):
        signal = generate_signal(64, kind="noise", seed=2)
        taps = lowpass_taps(8)
        ours = fir_reference(signal, taps)
        x = np.array([_signed32(w) for w in signal], dtype=float)
        h = np.array(taps, dtype=float)
        full = np.convolve(x, h)[: len(signal)] / 32768.0
        got = np.array([_signed32(w) for w in ours], dtype=float)
        assert np.abs(got - full).max() <= 1.0  # rounding only

    def test_impulse_response_returns_taps(self):
        taps = lowpass_taps(8)
        impulse = [32767] + [0] * 15
        out = fir_reference(impulse, taps)
        got = [_signed32(w) for w in out[:8]]
        for measured, tap in zip(got, taps):
            assert abs(measured - tap) <= 1


class TestGeneratedProgram:
    @pytest.mark.parametrize("n,blocks", [(64, 4), (128, 8)])
    def test_simulator_matches_reference(self, n, blocks):
        prog = build_fir_program(n, 16, blocks)
        platform, yields = run_on_platform(prog)
        out = platform.read_data(prog.workload.result_base, n)
        assert out == prog.expected_output(
            list(prog.workload.data_words[:n])
        )
        assert yields == blocks

    def test_lowpass_attenuates_chirp_tail(self):
        """The chirp sweeps up in frequency; the low-pass output must
        collapse towards the end — observable filter behaviour, not
        just bit-exactness."""
        prog = build_fir_program(128, 16, 8)
        platform, _ = run_on_platform(prog)
        out = platform.read_data(prog.workload.result_base, 128)
        magnitudes = [abs(_signed32(w)) for w in out]
        assert sum(magnitudes[-32:]) < 0.05 * sum(magnitudes[:32])

    def test_program_and_data_fit_platform(self):
        prog = build_fir_program(256, 16, 8)
        assert len(prog.workload.program_words) <= 1024
        assert len(prog.workload.data_words) <= 2048

    def test_custom_signal(self):
        signal = generate_signal(64, kind="step")
        prog = build_fir_program(64, 8, 4, signal=signal)
        platform, _ = run_on_platform(prog)
        out = platform.read_data(prog.workload.result_base, 64)
        assert out == prog.expected_output(signal)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_fir_program(100, 16, 7)  # blocks must divide n
        with pytest.raises(ValueError):
            build_fir_program(64, 16, 4, signal=[0] * 63)
        with pytest.raises(ValueError):
            generate_signal(16, kind="sawtooth")


class TestUnderMitigation:
    def test_fir_survives_faults_with_ocean(self):
        from repro.core.access import ACCESS_CELL_BASED_40NM
        from repro.mitigation import OceanRunner

        prog = build_fir_program(64, 8, 4)
        golden = prog.expected_output(list(prog.workload.data_words[:64]))
        outcome = OceanRunner(ACCESS_CELL_BASED_40NM, seed=4).run(
            prog.workload, vdd=0.38, frequency=290e3
        )
        assert outcome.output_matches(golden)

    def test_fir_corrupts_without_mitigation(self):
        from repro.core.access import ACCESS_CELL_BASED_40NM
        from repro.mitigation import NoMitigationRunner

        prog = build_fir_program(64, 8, 4)
        golden = prog.expected_output(list(prog.workload.data_words[:64]))
        wrong = 0
        for seed in range(6):
            outcome = NoMitigationRunner(
                ACCESS_CELL_BASED_40NM, seed=seed
            ).run(prog.workload, vdd=0.37, frequency=290e3)
            if not outcome.output_matches(golden):
                wrong += 1
        assert wrong >= 3
